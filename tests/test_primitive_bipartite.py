"""Bipartite primitives: HITS, SALSA, personalized PageRank, who-to-follow."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import generators
from repro.graph.build import to_networkx
from repro import primitives as P
from repro.simt import Machine


@pytest.fixture(scope="module")
def bp():
    g, nl, nr = generators.bipartite_powerlaw(300, 150, seed=3)
    return P.BipartiteGraph(g, nl, nr)


@pytest.fixture(scope="module")
def follow_graph():
    return generators.kronecker(9, seed=11, undirected=False)


# -- BipartiteGraph -----------------------------------------------------------------


def test_bipartite_validation():
    from repro.graph import from_edges

    g = from_edges([(0, 2), (1, 2)], n=3)
    bp = P.BipartiteGraph(g, 2, 1)
    assert bp.left_vertices().tolist() == [0, 1]
    assert bp.right_vertices().tolist() == [2]
    with pytest.raises(ValueError):
        P.BipartiteGraph(g, 1, 1)  # wrong total
    bad = from_edges([(2, 0)], n=3)
    with pytest.raises(ValueError):
        P.BipartiteGraph(bad, 2, 1)  # edge starts on the right


def test_bipartite_degrees(bp):
    assert bp.left_degrees().sum() == bp.graph.m
    assert bp.right_degrees().sum() == bp.graph.m


# -- HITS -------------------------------------------------------------------------


def test_hits_matches_networkx(bp):
    r = P.hits(bp, max_iterations=200, tolerance=1e-12)
    hub_ref, auth_ref = nx.hits(to_networkx(bp.graph), max_iter=1000,
                                tol=1e-12)
    hub = r.hub[:bp.n_left]
    ref = np.array([hub_ref[v] for v in range(bp.n_left)])
    hub = hub / hub.sum()
    ref = ref / ref.sum()
    assert np.allclose(hub, ref, atol=1e-6)


def test_hits_scores_normalized(bp):
    r = P.hits(bp)
    assert np.linalg.norm(r.hub) == pytest.approx(1.0)
    assert np.linalg.norm(r.auth) == pytest.approx(1.0)


def test_hits_sides_separated(bp):
    r = P.hits(bp)
    assert np.all(r.hub[bp.n_left:] == 0)
    assert np.all(r.auth[:bp.n_left] == 0)


# -- SALSA -------------------------------------------------------------------------


def test_salsa_hub_scores_sum_to_one(bp):
    r = P.salsa(bp)
    assert r.hub[:bp.n_left].sum() == pytest.approx(1.0)


def test_salsa_stationary_is_degree_proportional_when_connected():
    """On a connected bipartite graph, the alternating walk's stationary
    hub distribution is proportional to out-degree (standard SALSA fact
    per connected component of the co-citation graph)."""
    from repro.graph import from_edges

    # complete bipartite K_{3,2}
    edges = [(i, 3 + j) for i in range(3) for j in range(2)]
    g = from_edges(edges, n=5)
    bp = P.BipartiteGraph(g, 3, 2)
    r = P.salsa(bp, max_iterations=500, tolerance=1e-14)
    deg = bp.left_degrees().astype(float)
    assert np.allclose(r.hub[:3], deg / deg.sum(), atol=1e-8)


def test_salsa_auth_ranking_favors_popular(bp):
    r = P.salsa(bp)
    auth = r.auth[bp.n_left:]
    indeg = bp.right_degrees().astype(float)
    # strong rank correlation between authority score and in-degree
    top_by_auth = set(np.argsort(-auth)[:10].tolist())
    top_by_deg = set(np.argsort(-indeg)[:30].tolist())
    assert len(top_by_auth & top_by_deg) >= 5


# -- personalized PageRank -----------------------------------------------------------


def test_ppr_matches_networkx(follow_graph):
    r = P.ppr(follow_graph, 0, tolerance=1e-12)
    ref = nx.pagerank(to_networkx(follow_graph), alpha=0.85,
                      personalization={v: 1.0 if v == 0 else 0.0
                                       for v in range(follow_graph.n)},
                      tol=1e-14, max_iter=2000)
    ours = r.rank / r.rank.sum()
    for v in range(follow_graph.n):
        assert ours[v] == pytest.approx(ref[v], abs=1e-5)


def test_ppr_mass_concentrates_near_seed(follow_graph):
    r = P.ppr(follow_graph, 0, tolerance=1e-10)
    from repro.primitives import bfs

    depth = bfs(follow_graph, 0).labels
    near = r.rank[(depth >= 0) & (depth <= 1)].sum()
    far = r.rank[depth > 2].sum()
    assert near > far


def test_ppr_multi_seed(follow_graph):
    r = P.ppr(follow_graph, [0, 1, 2], tolerance=1e-10)
    assert r.rank[[0, 1, 2]].min() > 0


def test_ppr_rejects_bad_seed(follow_graph):
    with pytest.raises(ValueError):
        P.ppr(follow_graph, follow_graph.n)
    with pytest.raises(ValueError):
        P.ppr(follow_graph, [])


def test_ppr_top_excludes(follow_graph):
    r = P.ppr(follow_graph, 0, tolerance=1e-10)
    top = r.top(5, exclude=np.array([0]))
    assert 0 not in top.tolist()


# -- who-to-follow -------------------------------------------------------------------


def test_wtf_pipeline(follow_graph):
    r = P.who_to_follow(follow_graph, 0, k=5)
    followed = set(follow_graph.neighbors(0).tolist())
    assert len(r.recommendations) <= 5
    for v in r.recommendations.tolist():
        assert v not in followed
        assert v != 0
    assert len(r.circle) > 0
    assert 0 not in r.similar_users.tolist()


def test_wtf_cold_start():
    from repro.graph import from_edges

    g = from_edges([(1, 2)], n=3)
    r = P.who_to_follow(g, 0, k=5)  # vertex 0 follows nobody
    assert len(r.recommendations) == 0


def test_wtf_rejects_bad_user(follow_graph):
    with pytest.raises(ValueError):
        P.who_to_follow(follow_graph, -1)


def test_wtf_cold_start_reports_no_salsa_stage():
    from repro.graph import from_edges

    g = from_edges([(1, 2)], n=3)
    r = P.who_to_follow(g, 0, k=5)
    assert len(r.recommendations) == 0
    assert len(r.similar_users) == 0
    assert r.salsa_stats is None  # the ranking stage never ran


def test_wtf_k_exceeds_candidate_set():
    from repro.graph import from_edges

    # 0 -> 1 -> 2 -> 3: the circle of trust is {2}, whose only followee
    # that 0 does not already follow is 3 — one candidate, k=50
    g = from_edges([(0, 1), (1, 2), (2, 3)], n=4)
    r = P.who_to_follow(g, 0, k=50)
    assert r.recommendations.tolist() == [3]
    assert len(r.recommendations) < 50


def test_wtf_never_recommends_user_or_followees(follow_graph):
    for user in range(min(8, follow_graph.n)):
        r = P.who_to_follow(follow_graph, user, k=10)
        already = set(follow_graph.neighbors(user).tolist()) | {user}
        assert not (set(r.recommendations.tolist()) & already)
        assert user not in r.similar_users.tolist()


def test_wtf_self_loop_user_excluded():
    from repro.graph import from_edges

    # a self-follow must not surface the user as their own recommendation
    g = from_edges([(0, 0), (0, 1), (1, 0), (1, 2)], n=3)
    r = P.who_to_follow(g, 0, k=5)
    assert 0 not in r.recommendations.tolist()
    assert 1 not in r.recommendations.tolist()  # already followed


def test_wtf_exposes_salsa_trace(follow_graph):
    r = P.who_to_follow(follow_graph, 0, k=5)
    assert r.salsa_stats is not None
    assert r.salsa_stats.op_sequence(0) == ["advance", "advance(backward)"]


def test_circle_of_trust_ranked(follow_graph):
    circle = P.circle_of_trust(follow_graph, 0, size=50)
    assert len(circle) <= 50
    assert 0 not in circle.tolist()


def test_induced_bipartite_structure(follow_graph):
    hubs = np.array([0, 1, 2], dtype=np.int64)
    bp = P.induced_bipartite(follow_graph, hubs)
    assert bp.n_left == 3
    # every left vertex's edges land on the right side
    if bp.graph.m:
        assert bp.graph.edge_sources.max() < 3


def test_bipartite_primitives_charge_machine(bp):
    m = Machine()
    P.salsa(bp, machine=m, max_iterations=5)
    assert m.counters.kernel_launches > 0
    assert m.counters.atomics_issued > 0
