"""Multi-GPU substrate tests (Section 7 future work): partitioning,
interconnect model, and result equivalence with single-GPU primitives."""

import numpy as np
import pytest

from repro.graph import generators
from repro.multi import (InterconnectSpec, MultiMachine, multi_gpu_bfs,
                         multi_gpu_pagerank, partition_1d)
from repro.primitives import bfs, pagerank


@pytest.fixture(scope="module")
def g():
    return generators.kronecker(11, seed=5)


@pytest.fixture(scope="module")
def road():
    return generators.road_grid(48, 32, seed=3)


# -- partitioning -----------------------------------------------------------------


@pytest.mark.parametrize("method", ["contiguous", "hash"])
def test_partition_covers_everything(g, method):
    pg = partition_1d(g, 4, method=method)
    all_verts = np.concatenate([p.vertices for p in pg.parts])
    assert sorted(all_verts.tolist()) == list(range(g.n))
    assert sum(p.m_local for p in pg.parts) == g.m


def test_partition_owner_consistency(g):
    pg = partition_1d(g, 3)
    for p in pg.parts:
        assert np.all(pg.owner[p.vertices] == p.device)


def test_partition_local_csr_rows_match_global(g):
    pg = partition_1d(g, 4)
    for p in pg.parts:
        for i in (0, p.n_local // 2, p.n_local - 1):
            v = int(p.vertices[i])
            local = p.indices[p.indptr[i]:p.indptr[i + 1]]
            assert np.array_equal(local, g.neighbors(v).astype(np.int64))


def test_partition_k1_is_whole_graph(g):
    pg = partition_1d(g, 1)
    assert pg.remote_edge_fraction() == 0.0
    assert pg.parts[0].m_local == g.m


def test_partition_rejects_bad_args(g):
    with pytest.raises(ValueError):
        partition_1d(g, 0)
    with pytest.raises(ValueError):
        partition_1d(g, 2, method="quantum")


def test_contiguous_partition_fewer_remote_edges_on_road(road):
    """Road grids are id-clustered: contiguous ranges cut far fewer edges
    than hashing — the locality/balance trade."""
    cont = partition_1d(road, 4, method="contiguous")
    hsh = partition_1d(road, 4, method="hash")
    assert cont.remote_edge_fraction() < hsh.remote_edge_fraction()


def test_hash_partition_balances_edges_on_skew(g):
    cont = partition_1d(g, 8, method="contiguous")
    hsh = partition_1d(g, 8, method="hash")
    assert hsh.edge_balance() <= cont.edge_balance() + 0.5


# -- interconnect / machine ----------------------------------------------------------


def test_interconnect_transfer_model():
    link = InterconnectSpec(bandwidth_gbps=10.0, latency_us=5.0)
    # pure latency
    assert link.transfer_ms(0, 2) == pytest.approx(0.01)
    # bandwidth term: 10 MB at 10 GB/s = 1 ms
    assert link.transfer_ms(10e6, 0) == pytest.approx(1.0)


def test_multimachine_step_is_max_over_devices():
    mm = MultiMachine(k=2)
    mm.begin_step()
    mm.devices[0].launch("a", body_cycles=mm.spec.clock_ghz * 1e9)  # 1000 ms
    mm.devices[1].launch("b", body_cycles=mm.spec.clock_ghz * 1e6)  # 1 ms
    mm.end_step()
    assert mm.compute_ms() == pytest.approx(
        mm.devices[0].elapsed_ms(), rel=1e-6)


def test_multimachine_no_comm_single_device():
    mm = MultiMachine(k=1)
    mm.exchange(1e9)
    assert mm.comm_ms == 0.0


def test_multimachine_rejects_zero_devices():
    with pytest.raises(ValueError):
        MultiMachine(k=0)


# -- multi-GPU BFS --------------------------------------------------------------------


@pytest.mark.parametrize("k", [1, 2, 4, 8])
@pytest.mark.parametrize("method", ["contiguous", "hash"])
def test_multi_bfs_matches_single(g, k, method):
    ref = bfs(g, 0).labels
    r = multi_gpu_bfs(g, 0, k=k, method=method)
    assert np.array_equal(r.labels, ref)


def test_multi_bfs_road(road):
    ref = bfs(road, 0).labels
    r = multi_gpu_bfs(road, 0, k=4)
    assert np.array_equal(r.labels, ref)


def test_multi_bfs_source_validation(g):
    with pytest.raises(ValueError):
        multi_gpu_bfs(g, -1, k=2)


def test_multi_bfs_compute_scales_down(g):
    """Per-step compute (max over devices) shrinks with more devices,
    even when communication eats the end-to-end win — the honest multi-GPU
    story for graphs this small."""
    one = multi_gpu_bfs(g, 0, k=1)
    four = multi_gpu_bfs(g, 0, k=4, method="hash")
    assert four.compute_ms < one.compute_ms
    assert one.comm_ms == 0.0
    assert four.comm_ms > 0.0


def test_multi_bfs_remote_fraction_reported(g):
    r = multi_gpu_bfs(g, 0, k=4)
    assert 0.0 < r.remote_fraction < 1.0


def test_multi_bfs_machine_mismatch(g):
    with pytest.raises(ValueError):
        multi_gpu_bfs(g, 0, k=2, machine=MultiMachine(k=4))


# -- multi-GPU PageRank ------------------------------------------------------------------


@pytest.mark.parametrize("k", [1, 2, 4])
def test_multi_pagerank_matches_single(g, k):
    ref = pagerank(g, tolerance=1e-9).rank
    r = multi_gpu_pagerank(g, k=k, tolerance=1e-9)
    assert np.allclose(r.rank, ref, atol=1e-12)


def test_multi_pagerank_iterations_match_single(g):
    ref = pagerank(g, tolerance=1e-8)
    r = multi_gpu_pagerank(g, k=4, tolerance=1e-8)
    assert r.iterations == ref.iterations


def test_multi_pagerank_comm_volume_bounded_by_boundary(g):
    """Boundary aggregation: wire volume per iteration is at most one
    entry per (device, remote vertex) pair, never per edge."""
    mm = MultiMachine(k=4)
    r = multi_gpu_pagerank(g, k=4, machine=mm, tolerance=1e-8)
    max_per_iter = 4 * g.n * 16.0
    assert mm.comm_bytes <= max_per_iter * r.iterations


# -- super-step accounting guard ---------------------------------------------------------


def test_begin_step_twice_raises():
    """Regression: unbalanced begin/end used to silently mis-account the
    step makespan (the second begin_step overwrote the marks)."""
    mm = MultiMachine(k=2)
    mm.begin_step()
    with pytest.raises(RuntimeError, match="begin_step"):
        mm.begin_step()


def test_end_step_without_begin_raises():
    mm = MultiMachine(k=2)
    with pytest.raises(RuntimeError, match="begin_step"):
        mm.end_step()
    mm.begin_step()
    mm.end_step()
    with pytest.raises(RuntimeError, match="begin_step"):
        mm.end_step()


def test_abort_step_is_safe_and_accrues(g):
    mm = MultiMachine(k=2)
    mm.abort_step()  # no-op outside a step
    mm.begin_step()
    mm.devices[0].map_kernel("work", 1000, 1.0)
    mm.abort_step()  # partial work is real elapsed time
    assert mm.compute_ms() > 0.0
    mm.begin_step()  # pairing state was cleared
    mm.end_step()
