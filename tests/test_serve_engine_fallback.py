"""Serve-tier engine fallback contract: a batch dispatched with an
engine that has no lowering for its primitive must fall back to pooled
with a recorded reason, and the reply must stay bitwise-equal to a
pooled run.  Batches the engine *can* lower must dispatch it.
"""

import numpy as np

from repro.graph import generators
from repro.obs import observe
from repro.serve.batcher import plan_batches
from repro.serve.service import GraphService
from repro.simt import Machine


def _graph():
    return generators.kronecker(8, seed=3)


def _run_service(engine, requests):
    svc = GraphService(engine=engine)
    svc.load_graph(_graph())
    replies = {}
    for prim, params in requests:
        for batch in plan_batches(prim, [(0, params)]):
            replies.update(svc.run_batch("default", batch, Machine()))
    return svc, replies


def _assert_replies_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        assert set(a[key].arrays) == set(b[key].arrays)
        for name in a[key].arrays:
            assert np.array_equal(a[key].arrays[name], b[key].arrays[name]), \
                (key, name)


def test_solo_batch_without_lowering_falls_back_with_reason():
    g = _graph()
    user = int(g.out_degrees.argmax())
    svc_la, r_la = _run_service("la", [("wtf", {"user": user})])
    svc_p, r_p = _run_service(None, [("wtf", {"user": user})])
    assert svc_la.engine_fallbacks, "fallback not recorded on the service"
    assert any("no linear-algebra lowering" in reason
               for _, reason in svc_la.engine_fallbacks)
    assert not svc_p.engine_fallbacks
    _assert_replies_equal(r_la, r_p)


def test_coalesced_batch_dispatches_la_and_matches_pooled():
    req = [("pagerank", {"max_iterations": 25})]
    with observe() as ob:
        svc_la, r_la = _run_service("la", req)
    _, r_p = _run_service(None, req)
    assert not [f for f in svc_la.engine_fallbacks if f[0] == "pagerank"]
    counts = ob.metrics.as_dict()
    assert counts.get(
        'repro_la_dispatch_total{engine="la",primitive="pagerank"}',
        0.0) >= 1.0
    # the la pagerank loop replays the pooled residual schedule: the
    # served rank vector matches bitwise (contract is allclose)
    _assert_replies_equal(r_la, r_p)


def test_fused_engine_fallbacks_are_recorded_too():
    g = _graph()
    user = int(g.out_degrees.argmax())
    svc, _ = _run_service("fused", [("wtf", {"user": user})])
    assert any("no fused runner" in reason
               for _, reason in svc.engine_fallbacks)


def test_laned_batches_stay_pooled_and_record_nothing():
    svc, replies = _run_service("la", [("bfs", {"src": 0})])
    assert not svc.engine_fallbacks
    assert replies
