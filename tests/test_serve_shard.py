"""Sharded serving tier: routing, replica equivalence, failover,
hedging, breaker health, kill/repair, and report determinism."""

import json

import numpy as np
import pytest

from repro.graph import generators
from repro.multi import InterconnectSpec
from repro.primitives import bfs, pagerank
from repro.resilience import RetryPolicy
from repro.serve import (BreakerPolicy, FANOUT, Request, ShardScheduler,
                         ShardTier, ShardedGraphService, WorkloadSpec,
                         build_shard_map, parse_kill_schedule,
                         run_sharded_serving, run_serving,
                         shard_hotspot_popularity)
from repro.serve.batcher import batched_bfs, query_key
from repro.serve.shard import H_CLOSED, H_HALF_OPEN, H_OPEN, Replica
from repro.simt import Machine


@pytest.fixture(scope="module")
def g():
    return generators.kronecker(9, seed=3)


def _tier(shards=4, replicas=2, **kw):
    return ShardTier(shards, replicas, **kw)


def _service(graph, shards=4, replicas=2, **kw):
    service = ShardedGraphService(_tier(shards, replicas), **kw)
    service.load_graph(graph)
    return service


def _bfs_requests(sources, deadline=float("inf"), spacing=0.1):
    return [Request(rid=i, primitive="bfs", params={"src": int(s)},
                    arrival_ms=i * spacing, deadline_ms=deadline)
            for i, s in enumerate(sources)]


# -- kill schedules ----------------------------------------------------------


def test_parse_kill_schedule():
    evs = parse_kill_schedule("12:2:*,5:0:1", shards=4, replicas=2)
    assert [(e.at_ms, e.shard, e.replica) for e in evs] == \
        [(5.0, 0, 1), (12.0, 2, None)]
    assert parse_kill_schedule("", 4, 2) == []


@pytest.mark.parametrize("text", ["5:9:0", "5:0:7", "-1:0:0", "5:0", "x:0:0"])
def test_parse_kill_schedule_rejects(text):
    with pytest.raises(ValueError):
        parse_kill_schedule(text, shards=4, replicas=2)


# -- replica health state machine --------------------------------------------


def test_breaker_policy_validation():
    with pytest.raises(ValueError):
        BreakerPolicy(failure_threshold=0)
    with pytest.raises(ValueError):
        BreakerPolicy(cooldown_ms=-1.0)


def test_breaker_opens_after_threshold_and_half_open_probes():
    rep = Replica(0, 0, 0, Machine(),
                  breaker=BreakerPolicy(failure_threshold=3, cooldown_ms=10.0))
    rep.on_failure(1.0)
    rep.on_failure(2.0)
    assert rep.state == H_CLOSED
    rep.on_failure(3.0)
    assert rep.state == H_OPEN
    assert rep.breaker_opens == 1
    # the open cooldown is charged to the simulated clock
    assert rep.available_at(4.0) == 13.0
    rep.begin_dispatch(13.0)
    assert rep.state == H_HALF_OPEN
    # a successful probe closes the breaker and resets the count
    rep.on_success(14.0)
    assert rep.state == H_CLOSED
    assert rep.consecutive_failures == 0


def test_breaker_half_open_failure_reopens_immediately():
    rep = Replica(0, 0, 0, Machine(),
                  breaker=BreakerPolicy(failure_threshold=3, cooldown_ms=10.0))
    for t in (1.0, 2.0, 3.0):
        rep.on_failure(t)
    rep.begin_dispatch(13.0)
    assert rep.state == H_HALF_OPEN
    rep.on_failure(14.0)  # one probe failure re-opens, no threshold needed
    assert rep.state == H_OPEN
    assert rep.open_until_ms == 24.0


def test_group_pick_balances_and_demotes():
    tier = _tier(1, 3)
    group = tier.groups[0]
    group.replicas[0].busy_until_ms = 5.0
    rep, at = group.pick(0.0)
    assert (rep.index, at) == (1, 0.0)
    # prefer_not demotes a sibling without excluding it
    rep, _ = group.pick(0.0, prefer_not=group.replicas[1])
    assert rep.index == 2
    group.replicas[2].kill()
    rep, _ = group.pick(0.0, prefer_not=group.replicas[1])
    assert rep.index == 1  # only candidate left, demotion notwithstanding
    for r in group.replicas:
        r.kill()
    assert group.pick(0.0) is None and group.down


# -- ownership maps ----------------------------------------------------------


def test_shard_map_cascade_conserves_ownership(g):
    sm = build_shard_map(g, 4, "contiguous", dead_order=[1, 3])
    assert not np.any(sm.owner == 1)
    assert not np.any(sm.owner == 3)
    assert sm.pg.parts[1].n_local == 0 and sm.pg.parts[3].n_local == 0
    assert sum(p.n_local for p in sm.pg.parts) == g.n
    assert sum(p.m_local for p in sm.pg.parts) == g.m
    # the cascade is a pure function of the death order
    again = build_shard_map(g, 4, "contiguous", dead_order=[1, 3])
    assert np.array_equal(sm.owner, again.owner)


def test_route_by_primitive(g):
    service = _service(g)
    owner = service.shard_map().owner
    req = Request(0, "bfs", {"src": 7})
    assert service.route(req) == owner[7]
    assert service.route(Request(1, "sssp", {"src": 300})) == owner[300]
    assert service.route(Request(2, "ppr", {"seeds": (9, 4)})) == owner[4]
    assert service.route(Request(3, "wtf", {"user": 11, "k": 5})) == owner[11]
    assert service.route(Request(4, "pagerank", {})) == FANOUT
    with pytest.raises(ValueError):
        service.route(Request(5, "bfs", {"src": g.n + 1}))


def test_cache_keys_are_shard_scoped(g):
    service = _service(g)
    req = Request(0, "bfs", {"src": 3})
    sid = service.route(req)
    from repro.serve.batcher import plan_batches
    batch = plan_batches("bfs", [(0, req.params)], 8)[0]
    results, version = service.run_batch_on("default", batch, Machine())
    service.commit_results("default", version, sid, results)
    assert service.lookup_sharded(req, sid) is not None
    assert service.lookup_sharded(req, sid + 1) is None  # other shard: miss


# -- replica-served results == single-node results ---------------------------


def _cached_labels(service, src):
    req = Request(0, "bfs", {"src": src})
    sid = service.route(req)
    hit = service.lookup_sharded(req, sid)
    assert hit is not None, f"bfs src={src} not cached"
    return hit.arrays["labels"]


def test_replica_served_bfs_bitwise_equals_single_node(g):
    sources = [3, 97, 200, 411]
    service = _service(g)
    sched = ShardScheduler(service, seed=0)
    sched.replay(_bfs_requests(sources))
    for src in sources:
        want = batched_bfs(g, [src])[0].arrays["labels"]
        assert np.array_equal(_cached_labels(service, src), want)
        # depth labels equal the default single-query primitive too
        assert np.array_equal(_cached_labels(service, src),
                              bfs(g, src).labels)


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_results_invariant_under_shard_count(g, shards):
    sources = [3, 97, 200]
    service = _service(g, shards=shards, replicas=2)
    sched = ShardScheduler(service, seed=0)
    sched.replay(_bfs_requests(sources))
    for src in sources:
        assert np.array_equal(_cached_labels(service, src),
                              batched_bfs(g, [src])[0].arrays["labels"])


def test_results_invariant_under_replica_choice(g):
    # same queries, kills forcing the sibling replica: same bytes
    sources = [3, 97, 200]
    plain = _service(g)
    ShardScheduler(plain, seed=0).replay(_bfs_requests(sources))
    forced = _service(g)
    sched = ShardScheduler(forced, seed=0)
    kills = parse_kill_schedule("0:0:0,0:1:0,0:2:0,0:3:0", 4, 2)
    sched.replay(_bfs_requests(sources, spacing=1.0), kills=kills)
    for src in sources:
        assert np.array_equal(_cached_labels(plain, src),
                              _cached_labels(forced, src))


def test_fanout_pagerank_matches_single_and_shard_invariant(g):
    key = query_key("pagerank", {})
    ranks = {}
    for shards in (2, 4):
        service = _service(g, shards=shards)
        sched = ShardScheduler(service, seed=0)
        sched.replay([Request(0, "pagerank", {}, arrival_ms=0.0)])
        vg = service.graph_version()
        hit = service.cache.get("default", vg.version,
                                (("shard", FANOUT),) + key)
        assert hit is not None
        ranks[shards] = hit.arrays["rank"]
    assert np.array_equal(ranks[2], ranks[4])
    np.testing.assert_allclose(ranks[4], pagerank(g).rank, atol=1e-12)


# -- failover and health under faults ----------------------------------------


def test_transient_fault_fails_over_to_sibling(g):
    service = _service(g, shards=2, replicas=2)
    sched = ShardScheduler(service, seed=3, fault_rate=0.4,
                           retry=RetryPolicy(max_retries=3))
    done = sched.replay(_bfs_requests([3, 97, 200, 411, 30, 77], spacing=8.0))
    assert sched.failovers > 0
    assert all(c.served for c in done)
    for src in (3, 97, 200):
        assert np.array_equal(_cached_labels(service, src),
                              batched_bfs(g, [src])[0].arrays["labels"])


def test_retries_exhausted_is_typed_failed(g):
    service = _service(g, shards=1, replicas=2)
    sched = ShardScheduler(service, seed=1, fault_rate=0.97,
                           retry=RetryPolicy(max_retries=1))
    done = sched.replay(_bfs_requests([3, 97, 200, 411], spacing=30.0))
    failed = [c for c in done if c.outcome == "failed"]
    assert failed and all(c.reason == "retries_exhausted" for c in failed)


def test_sustained_faults_open_breakers(g):
    service = _service(
        g, shards=1, replicas=2)
    service.tier.breaker = BreakerPolicy(failure_threshold=2,
                                         cooldown_ms=5.0)
    for rep in service.tier.all_replicas():
        rep.breaker = service.tier.breaker
    sched = ShardScheduler(service, seed=5, fault_rate=0.9,
                           retry=RetryPolicy(max_retries=6))
    sched.replay(_bfs_requests(list(range(3, 43)), spacing=4.0))
    assert sched.shard_summary()["breaker_opens"] > 0


# -- kills, repair, degradation ----------------------------------------------


def test_kill_one_replica_fails_over_in_flight(g):
    service = _service(g, shards=1, replicas=2)
    sched = ShardScheduler(service, seed=0, batch_window_ms=0.0)
    # the lone request dispatches at t=0 on replica 0; kill it mid-flight
    kills = parse_kill_schedule("0.01:0:0", 1, 2)
    done = sched.replay(_bfs_requests([3], spacing=0.0), kills=kills)
    assert sched.failovers == 1
    assert len(done) == 1 and done[0].outcome == "ok"
    assert np.array_equal(_cached_labels(service, 3),
                          batched_bfs(g, [3])[0].arrays["labels"])


def test_whole_group_death_repairs_and_reroutes(g):
    service = _service(g, shards=4, replicas=2)
    owner = service.shard_map().owner.copy()
    dead_vertex = int(np.flatnonzero(owner == 1)[0])
    sched = ShardScheduler(service, seed=0)
    kills = parse_kill_schedule("1:1:*", 4, 2)
    reqs = [Request(0, "bfs", {"src": dead_vertex}, arrival_ms=5.0,
                    deadline_ms=1000.0)]
    done = sched.replay(reqs, kills=kills)
    # repair re-homed the vertex onto a survivor and the query ran there
    assert sched.repairs == 1
    assert service.shard_map().shard_of(dead_vertex) != 1
    assert len(done) == 1 and done[0].outcome == "ok"
    assert np.array_equal(_cached_labels(service, dead_vertex),
                          batched_bfs(g, [dead_vertex])[0].arrays["labels"])


def test_shard_down_shed_is_typed(g):
    # a slow interconnect keeps the repair pending long past the deadline
    tier = ShardTier(4, 2, interconnect=InterconnectSpec(latency_us=1e6))
    service = ShardedGraphService(tier)
    service.load_graph(g)
    owner = service.shard_map().owner.copy()
    dead_vertex = int(np.flatnonzero(owner == 1)[0])
    sched = ShardScheduler(service, seed=0)
    kills = parse_kill_schedule("1:1:*", 4, 2)
    reqs = [Request(0, "bfs", {"src": dead_vertex}, arrival_ms=5.0,
                    deadline_ms=0.05)]
    done = sched.replay(reqs, kills=kills)
    assert len(done) == 1
    assert done[0].outcome == "shed" and done[0].reason == "shard_down"
    assert sched.shard_down_shed == 1


def test_fanout_degrades_to_partial_when_group_down(g):
    tier = ShardTier(2, 1, interconnect=InterconnectSpec(latency_us=1e6))
    service = ShardedGraphService(tier)
    service.load_graph(g)
    sched = ShardScheduler(service, seed=0)
    kills = parse_kill_schedule("0.5:1:*", 2, 1)
    done = sched.replay(
        [Request(0, "pagerank", {}, arrival_ms=1.0, deadline_ms=2.0)],
        kills=kills)
    assert len(done) == 1
    assert done[0].outcome == "partial" and done[0].reason == "degraded"
    # degraded ranks are never cached: a later ask recomputes fully
    vg = service.graph_version()
    assert service.cache.get("default", vg.version,
                             (("shard", FANOUT),) + query_key(
                                 "pagerank", {})) is None
    assert service.cache.stats.stale_rejections == 0


def test_per_shard_queue_bound_isolates_hotspots(g):
    service = _service(g, shards=4, replicas=1)
    owner = service.shard_map().owner.copy()
    hot = [int(v) for v in np.flatnonzero(owner == 0)[:6]]
    cold = int(np.flatnonzero(owner == 2)[0])
    sched = ShardScheduler(service, seed=0, max_queue=2,
                           batch_window_ms=50.0, max_lanes=32)
    reqs = _bfs_requests(hot, spacing=0.0)
    reqs.append(Request(len(hot), "bfs", {"src": cold}, arrival_ms=0.0))
    done = sched.replay(reqs)
    by_outcome = {}
    for c in done:
        by_outcome.setdefault(c.outcome, []).append(c.rid)
    # the hot shard shed its overflow, the cold shard's request survived
    shed = [c for c in done if c.outcome == "shed"]
    assert shed and all(c.reason == "queue_full" for c in shed)
    assert all(c.rid != len(hot) for c in shed)


# -- hedging -----------------------------------------------------------------


def _hedge_run(g, hedging):
    # three replicas + a short breaker cooldown keep a sibling free at
    # the hedge instant even while faults are bouncing executions around
    spec = WorkloadSpec(requests=150, seed=11, arrival_rate_rps=4000.0)
    return run_sharded_serving(g, spec, shards=2, replicas=3,
                               fault_rate=0.25, hedging=hedging,
                               breaker=BreakerPolicy(cooldown_ms=1.0),
                               retry=RetryPolicy(max_retries=4))


def test_hedging_launches_and_never_changes_outcomes(g):
    hedged = _hedge_run(g, True)
    plain = _hedge_run(g, False)
    assert hedged.shard["hedges_launched"] > 0
    assert hedged.shard["hedges_won"] > 0
    assert plain.shard["hedges_launched"] == 0
    # hedging trades duplicate work for tail latency, never correctness
    assert hedged.served == plain.served
    assert hedged.failed == plain.failed
    assert hedged.shard["hedge_waste_ms"] >= 0.0


# -- reports -----------------------------------------------------------------


def test_report_breakdowns_and_accounting(g):
    spec = WorkloadSpec(requests=120, seed=7, arrival_rate_rps=20000.0)
    r = run_sharded_serving(g, spec, shards=4, replicas=2, max_queue=4,
                            kill_schedule="2:0:1,4:3:*")
    d = r.as_dict()
    assert d["served"] + d["shed"] + d["deadline_drops"] + d["failed"] \
        == d["requests"]
    assert sum(sum(h.values()) for h in d["by_primitive"].values()) \
        == d["requests"]
    non_served = d["shed"] + d["deadline_drops"] + d["failed"]
    assert sum(sum(h.values()) for h in d["shed_reasons"].values()) \
        == non_served
    legal = {"queue_full", "deadline_passed", "shard_down",
             "retries_exhausted"}
    for reasons in d["shed_reasons"].values():
        assert set(reasons) <= legal
    assert d["shard"]["killed_replicas"] == 3
    assert d["stale_hits"] == 0


def test_sharded_report_is_byte_deterministic(g):
    spec = WorkloadSpec(requests=100, seed=7, arrival_rate_rps=8000.0)
    kw = dict(shards=4, replicas=2, fault_rate=0.1,
              kill_schedule="3:1:0,6:2:*")
    a = run_sharded_serving(g, spec, **kw)
    b = run_sharded_serving(g, spec, **kw)
    assert json.dumps(a.as_dict(), sort_keys=True) \
        == json.dumps(b.as_dict(), sort_keys=True)


def test_legacy_report_gains_reason_breakdowns(g):
    spec = WorkloadSpec(requests=60, seed=7, arrival_rate_rps=50000.0)
    r = run_serving(g, spec, devices=1, max_queue=4)
    d = r.as_dict()
    assert d["shard"] == {}
    assert d["served"] + d["shed"] + d["deadline_drops"] == d["requests"]
    reasons = set()
    for per_prim in d["shed_reasons"].values():
        reasons |= set(per_prim)
    assert reasons <= {"queue_full", "deadline_passed"}
    if d["shed"]:
        assert "queue_full" in reasons


def test_hotspot_popularity_targets_one_shard(g):
    service = _service(g)
    owner = service.shard_map().owner
    p = shard_hotspot_popularity(g, owner, sid=2, boost=50.0)
    assert p.sum() == pytest.approx(1.0)
    assert p[owner == 2].sum() > 0.8
    with pytest.raises(ValueError):
        shard_hotspot_popularity(g, owner, sid=2, boost=0.0)
