"""BFS correctness across all configurations, validated against NetworkX."""

import networkx as nx
import numpy as np
import pytest

from repro.core.loadbalance import Hybrid, LBPartitioned, ThreadMapped, TWC
from repro.graph.build import to_networkx
from repro.primitives import bfs
from repro.simt import Machine


def nx_depths(g, src):
    return nx.single_source_shortest_path_length(to_networkx(g), src)


def assert_matches_nx(g, result, src):
    ref = nx_depths(g, src)
    reached = result.labels >= 0
    assert int(reached.sum()) == len(ref)
    for v, d in ref.items():
        assert result.labels[v] == d


@pytest.mark.parametrize("idempotent", [True, False])
@pytest.mark.parametrize("direction", ["push", "pull", "auto"])
def test_bfs_matches_networkx_kron(kron_graph, idempotent, direction):
    r = bfs(kron_graph, 0, idempotent=idempotent, direction=direction)
    assert_matches_nx(kron_graph, r, 0)


@pytest.mark.parametrize("direction", ["push", "auto"])
def test_bfs_matches_networkx_road(road_graph, direction):
    r = bfs(road_graph, 5, direction=direction)
    assert_matches_nx(road_graph, r, 5)


def test_bfs_hub_graph(hub_graph):
    r = bfs(hub_graph, 0)
    assert_matches_nx(hub_graph, r, 0)


@pytest.mark.parametrize("lb", [ThreadMapped(), ThreadMapped(False), TWC(),
                                LBPartitioned(), Hybrid()])
def test_bfs_identical_results_across_load_balancers(kron_graph, lb):
    """Load balancing is cost-only: results must be bit-identical."""
    ref = bfs(kron_graph, 0, lb=Hybrid()).labels
    out = bfs(kron_graph, 0, lb=lb).labels
    assert np.array_equal(ref, out)


def test_bfs_unreachable_marked(tiny_graph):
    r = bfs(tiny_graph, 0)
    assert r.labels[5] == -1  # isolated vertex


def test_bfs_source_depth_zero(tiny_graph):
    r = bfs(tiny_graph, 0)
    assert r.labels[0] == 0


def test_bfs_preds_form_valid_tree(kron_graph):
    r = bfs(kron_graph, 0)
    labels, preds = r.labels, r.preds
    assert preds[0] == 0
    reached = np.flatnonzero(labels > 0)
    # every reached vertex's predecessor is exactly one level shallower
    assert np.all(labels[preds[reached]] == labels[reached] - 1)
    # and the tree edge exists in the graph
    for v in reached[:200]:
        assert v in kron_graph.neighbors(int(preds[v]))


def test_bfs_no_preds_mode(kron_graph):
    r = bfs(kron_graph, 0, record_preds=False)
    assert r.preds is None


def test_bfs_source_out_of_range(tiny_graph):
    with pytest.raises(ValueError):
        bfs(tiny_graph, 99)


def test_bfs_max_iterations(road_graph):
    r = bfs(road_graph, 0, max_iterations=2)
    assert r.labels.max() <= 2


def test_bfs_atomic_mode_duplicate_free_frontiers(kron_graph):
    """Non-idempotent advance must never grow the frontier beyond n."""
    m = Machine()
    r = bfs(kron_graph, 0, idempotent=False, machine=m)
    assert m.counters.frontier_peak <= kron_graph.n
    assert_matches_nx(kron_graph, r, 0)


def test_bfs_idempotent_avoids_atomics(kron_graph):
    m_idem = Machine()
    bfs(kron_graph, 0, idempotent=True, direction="push", machine=m_idem)
    m_atomic = Machine()
    bfs(kron_graph, 0, idempotent=False, direction="push", machine=m_atomic)
    assert m_idem.counters.atomics_issued == 0
    assert m_atomic.counters.atomics_issued > 0


def test_bfs_direction_auto_switches_on_scale_free(kron_graph):
    m = Machine()
    bfs(kron_graph, 0, direction="auto", machine=m)
    names = {k.name for k in m.counters.kernels}
    assert any("pull" in n for n in names)   # it did switch
    assert any("push" in n for n in names)   # and started with push


def test_bfs_pull_visits_fewer_edges_on_scale_free(kron_graph):
    m_push = Machine()
    bfs(kron_graph, 0, direction="push", machine=m_push)
    m_auto = Machine()
    bfs(kron_graph, 0, direction="auto", machine=m_auto)
    assert m_auto.counters.edges_visited < m_push.counters.edges_visited


def test_bfs_deterministic(kron_graph):
    a = bfs(kron_graph, 0)
    b = bfs(kron_graph, 0)
    assert np.array_equal(a.labels, b.labels)
    assert np.array_equal(a.preds, b.preds)


def test_bfs_result_metadata(kron_graph):
    m = Machine()
    r = bfs(kron_graph, 0, machine=m)
    assert r.iterations > 0
    assert r.elapsed_ms > 0
    assert r.mteps() > 0
    assert r.enactor_stats is not None


def test_bfs_without_machine(kron_graph):
    r = bfs(kron_graph, 0)
    assert r.elapsed_ms is None
    assert r.mteps() is None


def test_bfs_every_source_on_tiny(tiny_graph):
    for src in range(tiny_graph.n):
        r = bfs(tiny_graph, src)
        assert_matches_nx(tiny_graph, r, src)
