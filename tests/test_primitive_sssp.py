"""SSSP correctness (vs NetworkX Dijkstra) and priority-queue behavior."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import from_edges
from repro.graph.build import to_networkx
from repro.primitives import sssp, default_delta
from repro.simt import Machine


def nx_dists(g, src):
    return nx.single_source_dijkstra_path_length(
        to_networkx(g), src, weight="weight")


def assert_matches_nx(g, result, src):
    ref = nx_dists(g, src)
    finite = np.isfinite(result.labels)
    assert int(finite.sum()) == len(ref)
    for v, d in ref.items():
        assert result.labels[v] == pytest.approx(d)


@pytest.mark.parametrize("pq", [True, False])
def test_sssp_matches_networkx_kron(kron_weighted, pq):
    r = sssp(kron_weighted, 0, use_priority_queue=pq)
    assert_matches_nx(kron_weighted, r, 0)


@pytest.mark.parametrize("pq", [True, False])
def test_sssp_matches_networkx_road(road_weighted, pq):
    r = sssp(road_weighted, 3, use_priority_queue=pq)
    assert_matches_nx(road_weighted, r, 3)


def test_sssp_unweighted_equals_bfs(kron_graph):
    from repro.primitives import bfs

    r = sssp(kron_graph, 0)
    b = bfs(kron_graph, 0)
    finite = np.isfinite(r.labels)
    assert np.array_equal(r.labels[finite].astype(np.int64),
                          b.labels[finite])


def test_sssp_rejects_negative_weights():
    g = from_edges([(0, 1)], n=2, weights=[-1.0])
    with pytest.raises(ValueError):
        sssp(g, 0)


def test_sssp_source_out_of_range(kron_weighted):
    with pytest.raises(ValueError):
        sssp(kron_weighted, -1)


def test_sssp_preds_consistent(kron_weighted):
    r = sssp(kron_weighted, 0)
    w = kron_weighted.weight_or_ones()
    reached = np.flatnonzero(np.isfinite(r.labels))
    for v in reached[:300]:
        v = int(v)
        if v == 0:
            continue
        p = int(r.preds[v])
        nbrs = kron_weighted.neighbors(p)
        pos = np.flatnonzero(nbrs == v)
        assert len(pos) > 0
        eid = int(kron_weighted.indptr[p]) + int(pos[0])
        assert r.labels[p] + w[eid] == pytest.approx(r.labels[v])


def test_sssp_delta_values_dont_change_answer(road_weighted):
    ref = sssp(road_weighted, 0, use_priority_queue=False).labels
    for delta in (1.0, 8.0, 64.0, 1e9):
        out = sssp(road_weighted, 0, delta=delta).labels
        assert np.allclose(ref, out, equal_nan=True)


def test_sssp_priority_queue_reduces_relaxations_on_road(road_weighted):
    """Near/far saves work where Dijkstra beats Bellman-Ford: long-diameter
    weighted graphs (the Davidson et al. motivation)."""
    m_pq = Machine()
    sssp(road_weighted, 0, use_priority_queue=True, machine=m_pq)
    m_plain = Machine()
    sssp(road_weighted, 0, use_priority_queue=False, machine=m_plain)
    assert m_pq.counters.edges_visited < m_plain.counters.edges_visited


def test_sssp_default_delta_positive(kron_weighted, road_weighted):
    assert default_delta(kron_weighted) > 0
    assert default_delta(road_weighted) > 0


def test_sssp_deterministic(kron_weighted):
    a = sssp(kron_weighted, 0)
    b = sssp(kron_weighted, 0)
    assert np.array_equal(a.labels, b.labels)
    assert np.array_equal(a.preds, b.preds)


def test_sssp_unreachable_infinite(tiny_graph):
    gw = tiny_graph.with_edge_values(np.ones(tiny_graph.m))
    r = sssp(gw, 0)
    assert np.isinf(r.labels[5])
    assert r.preds[5] == -1


def test_sssp_hub_graph(hub_graph):
    from repro.graph.build import with_random_weights

    gw = with_random_weights(hub_graph, seed=11)
    r = sssp(gw, 0)
    assert_matches_nx(gw, r, 0)


def test_sssp_result_metadata(kron_weighted):
    m = Machine()
    r = sssp(kron_weighted, 0, machine=m)
    assert r.elapsed_ms > 0
    assert r.iterations > 0
    assert m.counters.atomics_issued > 0  # atomicMin relaxations
