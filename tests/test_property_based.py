"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import Frontier, Functor, ProblemBase, advance, atomics, \
    filter_frontier
from repro.core.operators.priority_queue import NearFarPile
from repro.graph import Coo, from_edges
from repro.simt import primitives


# -- strategies ---------------------------------------------------------------------

small_ints = st.integers(min_value=0, max_value=30)


@st.composite
def edge_lists(draw, max_n=24, max_m=80):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=m, max_size=m))
    return n, edges


@st.composite
def int_arrays(draw, max_len=60, lo=0, hi=100):
    xs = draw(st.lists(st.integers(lo, hi), max_size=max_len))
    return np.asarray(xs, dtype=np.int64)


# -- device primitives ------------------------------------------------------------------


@given(int_arrays())
def test_exclusive_scan_property(xs):
    scan, total = primitives.exclusive_scan(xs)
    assert total == xs.sum()
    ref = np.concatenate([[0], np.cumsum(xs)[:-1]]) if len(xs) else scan
    assert np.array_equal(scan, ref)


@given(int_arrays())
def test_scan_monotone(xs):
    scan, _ = primitives.exclusive_scan(xs)
    assert np.all(np.diff(scan) >= 0)


@given(int_arrays(), st.integers(0, 2**32))
def test_compact_property(xs, seed):
    rng = np.random.default_rng(seed)
    mask = rng.random(len(xs)) < 0.5
    out = primitives.compact(xs, mask)
    assert len(out) == mask.sum()
    assert np.array_equal(out, xs[mask])


@given(int_arrays(), int_arrays())
def test_sorted_search_property(needles, hay):
    hay = np.sort(hay)
    out = primitives.sorted_search(needles, hay)
    for i, x in enumerate(needles):
        # searchsorted-right invariant
        assert np.all(hay[:out[i]] <= x)
        assert np.all(hay[out[i]:] > x)


@given(int_arrays(max_len=40, hi=8))
def test_segmented_reduce_matches_loop(degs):
    offsets = np.concatenate([[0], np.cumsum(degs)])
    vals = np.arange(offsets[-1], dtype=np.float64)
    out = primitives.segmented_reduce_sum(vals, offsets)
    ref = [vals[offsets[i]:offsets[i + 1]].sum() for i in range(len(degs))]
    assert np.allclose(out, ref)


@given(int_arrays(max_len=40, hi=6))
def test_segment_ids_property(degs):
    offsets = np.concatenate([[0], np.cumsum(degs)])
    ids = primitives.segment_ids_from_offsets(offsets)
    ref = np.repeat(np.arange(len(degs)), degs)
    assert np.array_equal(ids, ref)


@given(int_arrays())
def test_unique_by_sort_property(xs):
    out = primitives.unique_by_sort(xs)
    assert np.array_equal(out, np.unique(xs))


# -- COO/CSR ------------------------------------------------------------------------------


@given(edge_lists())
@settings(max_examples=50)
def test_csr_roundtrip_property(data):
    n, edges = data
    if not edges:
        return
    arr = np.asarray(edges, dtype=np.int64)
    coo = Coo(arr[:, 0], arr[:, 1], n).deduplicated()
    g = coo.to_csr()
    g.validate()
    assert g.m == coo.m
    # every input edge is present
    for s, d in set(edges):
        assert d in g.neighbors(s)


@given(edge_lists())
@settings(max_examples=50)
def test_symmetrize_property(data):
    n, edges = data
    if not edges:
        return
    arr = np.asarray(edges, dtype=np.int64)
    g = Coo(arr[:, 0], arr[:, 1], n).symmetrized().to_csr()
    # symmetric: reverse equals itself (as edge sets)
    rev = g.reverse()
    assert np.array_equal(np.sort(g.indptr), np.sort(rev.indptr))
    assert g.m == rev.m


@given(edge_lists())
@settings(max_examples=50)
def test_reverse_involution_property(data):
    n, edges = data
    arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if len(arr) == 0:
        return
    coo = Coo(arr[:, 0], arr[:, 1], n).deduplicated()
    g = coo.to_csr()
    assert g.reverse().reverse() == g


# -- atomics ---------------------------------------------------------------------------------


@given(int_arrays(max_len=50, hi=9), st.integers(0, 2**32))
def test_atomic_min_equals_groupwise_min(idx, seed):
    if len(idx) == 0:
        return
    rng = np.random.default_rng(seed)
    vals = rng.integers(0, 100, size=len(idx)).astype(np.float64)
    arr = np.full(10, 1000.0)
    atomics.atomic_min(arr, idx, vals)
    for cell in range(10):
        mine = vals[idx == cell]
        expect = min(1000.0, mine.min()) if len(mine) else 1000.0
        assert arr[cell] == expect


@given(int_arrays(max_len=50, hi=9), st.integers(0, 2**32))
def test_atomic_add_equals_groupwise_sum(idx, seed):
    if len(idx) == 0:
        return
    rng = np.random.default_rng(seed)
    vals = rng.integers(0, 10, size=len(idx)).astype(np.float64)
    arr = np.zeros(10)
    atomics.atomic_add(arr, idx, vals)
    for cell in range(10):
        assert arr[cell] == vals[idx == cell].sum()


@given(int_arrays(max_len=50, hi=9))
def test_atomic_cas_exactly_one_winner_per_cell(idx):
    flags = np.zeros(10, dtype=bool)
    won = atomics.atomic_cas_claim(flags, idx)
    for cell in np.unique(idx):
        assert won[idx == cell].sum() == 1


# -- frontier / operators ---------------------------------------------------------------------


class P(ProblemBase):
    def __init__(self, graph):
        super().__init__(graph)
        self.add_vertex_array("labels", np.int64, -1)

    def unvisited_mask(self):
        return self.labels < 0


@given(edge_lists())
@settings(max_examples=40)
def test_advance_output_are_neighbors(data):
    n, edges = data
    g = from_edges(edges, n=n) if edges else from_edges([], n=n)
    prob = P(g)
    frontier = Frontier.all_vertices(n)
    out = advance(prob, frontier, Functor())
    # every emitted vertex must be someone's neighbor; count must equal m
    assert len(out) == g.m
    neighbor_set = set(g.indices.tolist())
    assert set(out.items.tolist()) <= neighbor_set


@given(edge_lists())
@settings(max_examples=40)
def test_advance_push_pull_same_coverage(data):
    n, edges = data
    if not edges:
        return
    g = from_edges(edges, n=n, undirected=True)

    class Label(Functor):
        def cond_edge(self, Pb, src, dst, eid):
            return Pb.labels[dst] < 0

        def apply_edge(self, Pb, src, dst, eid):
            Pb.labels[dst] = 1
            return None

    p1, p2 = P(g), P(g)
    p1.labels[0] = 0
    p2.labels[0] = 0
    a = advance(p1, Frontier.from_vertex(0), Label())
    b = advance(p2, Frontier.from_vertex(0), Label(), mode="pull")
    assert np.array_equal(np.unique(a.items), np.unique(b.items))


@given(int_arrays(max_len=60, hi=20))
def test_filter_heuristics_preserve_coverage(items):
    from repro.core import IdempotenceHeuristics

    g = from_edges([(0, 1)], n=21, undirected=True)
    prob = P(g)
    h = IdempotenceHeuristics(history_bits=3)
    out = filter_frontier(prob, Frontier(items), Functor(), heuristics=h)
    assert set(np.unique(out.items)) == set(np.unique(items))


@given(int_arrays(max_len=60, hi=50), st.floats(0.5, 20.0))
def test_near_far_pile_emits_every_element_once_per_push(items, delta):
    g = from_edges([(0, 1)], n=51, undirected=True)
    prob = P(g)
    prob.add_vertex_array("prio", np.float64, 0.0)
    prob.prio[:] = np.arange(51, dtype=np.float64)
    pile = NearFarPile(prob, lambda Pb, v: Pb.prio[v], delta)
    pile.push(Frontier(items))
    seen = []
    while not pile.exhausted:
        seen.extend(pile.pop_near().items.tolist())
    assert sorted(seen) == sorted(items.tolist())


@given(int_arrays(max_len=60, hi=50))
def test_near_far_pop_order_respects_priority(items):
    g = from_edges([(0, 1)], n=51, undirected=True)
    prob = P(g)
    pile = NearFarPile(prob, lambda Pb, v: v.astype(np.float64), delta=10.0)
    pile.push(Frontier(items))
    last_max = -1.0
    while not pile.exhausted:
        chunk = pile.pop_near().items
        if len(chunk) == 0:
            continue
        # every later chunk's minimum exceeds an earlier chunk's bucket
        assert chunk.min() >= last_max - 10.0
        last_max = max(last_max, float(chunk.max()))


# -- BFS against a trivially correct reference --------------------------------------------------


@given(edge_lists(max_n=16, max_m=40), st.integers(0, 15))
@settings(max_examples=40, deadline=None)
def test_bfs_property_vs_dijkstra_unit(data, src):
    n, edges = data
    src = src % n
    g = from_edges(edges, n=n, undirected=True) if edges else from_edges([], n=n)
    from repro.primitives import bfs

    r = bfs(g, src)
    # reference: simple Python BFS
    ref = {src: 0}
    frontier = [src]
    while frontier:
        nxt = []
        for u in frontier:
            for v in g.neighbors(u):
                if int(v) not in ref:
                    ref[int(v)] = ref[u] + 1
                    nxt.append(int(v))
        frontier = nxt
    for v in range(n):
        assert r.labels[v] == ref.get(v, -1)


# -- fault-recovery determinism -----------------------------------------------------------


@given(edge_lists(max_n=20, max_m=60), st.integers(0, 19),
       st.integers(0, 2**16))
@settings(max_examples=25, deadline=None)
def test_bfs_recovery_identical_under_random_faults(data, src, fault_seed):
    """Resilience invariant: any seeded fault schedule leaves BFS results
    identical to the fault-free run."""
    from repro.primitives import bfs
    from repro.resilience import FaultKind, FaultPlan
    from repro.simt import Machine

    n, edges = data
    src = src % n
    g = from_edges(edges, n=n, undirected=True) if edges else from_edges([], n=n)
    ref = bfs(g, src)
    plan = FaultPlan.random(
        fault_seed,
        [FaultKind.TRANSIENT_KERNEL, FaultKind.CORRUPTION,
         FaultKind.STRAGGLER],
        steps=max(1, ref.iterations - 1))
    r = bfs(g, src, machine=Machine(), checkpoint_every=1, faults=plan)
    assert np.array_equal(r.labels, ref.labels)


# -- cross-engine identity (shared harness) ----------------------------------
#
# The pooled-vs-unpooled comparison loops that used to live here moved
# into tests/engines.py; these tests now drive the same configurations
# through the shared differential harness, which additionally covers the
# la engine where a lowering exists (pull direction and the CAS-claim
# non-idempotent BFS path are la-supported but fused-unsupported, so
# fused stays out of these runs).


@given(edge_lists(max_n=24, max_m=90), st.integers(0, 23),
       st.sampled_from(["auto", "push", "pull"]), st.booleans())
@settings(max_examples=30, deadline=None)
def test_bfs_pooled_unpooled_identical(data, src, direction, idempotent):
    """Pooling invariant: identical output arrays AND identical simulated
    cycle counters, for every BFS configuration."""
    from engines import run_all_engines

    n, edges = data
    src = src % n
    g = from_edges(edges, n=n, undirected=True) if edges else from_edges([], n=n)
    run_all_engines("bfs", g, engines=("unpooled", "pooled", "la"),
                    src=src, direction=direction, idempotent=idempotent)


@given(edge_lists(max_n=20, max_m=70), st.integers(0, 19),
       st.integers(0, 2**16), st.booleans())
@settings(max_examples=25, deadline=None)
def test_sssp_pooled_unpooled_identical(data, src, wseed, use_pq):
    from engines import run_all_engines
    from repro.graph.build import with_random_weights

    n, edges = data
    src = src % n
    g = from_edges(edges, n=n, undirected=True) if edges else from_edges([], n=n)
    g = with_random_weights(g, seed=wseed)
    run_all_engines("sssp", g, engines=("unpooled", "pooled", "la"),
                    src=src, use_priority_queue=use_pq)


@given(edge_lists(max_n=20, max_m=70), st.integers(1, 30))
@settings(max_examples=20, deadline=None)
def test_pagerank_pooled_unpooled_identical(data, max_iter):
    from engines import run_all_engines

    n, edges = data
    g = from_edges(edges, n=n, undirected=True) if edges else from_edges([], n=n)
    run_all_engines("pagerank", g, engines=("unpooled", "pooled", "la"),
                    max_iterations=max_iter)


@given(edge_lists(max_n=18, max_m=60), st.integers(1, 12))
@settings(max_examples=15, deadline=None)
def test_pagerank_gather_pooled_unpooled_identical(data, max_iter):
    # gatherpagerank has no LA lowering: the harness asserts the la run
    # falls back to pooled and stays bitwise-identical
    from engines import run_all_engines

    n, edges = data
    g = from_edges(edges, n=n, undirected=True) if edges else from_edges([], n=n)
    run_all_engines("pagerank_gather", g,
                    engines=("unpooled", "pooled", "la"),
                    max_iterations=max_iter)
