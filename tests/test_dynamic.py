"""Streaming graph mutations: delta-CSR units + incremental-repair
equivalence properties.

The property tests are the contract the serving tier leans on: after any
random interleaving of inserts, deletes, reweights, and compactions,

* delta-BFS / delta-SSSP labels are **bitwise equal** to a from-scratch
  run on the compacted graph (predecessors are pinned by the support
  oracle instead — the from-scratch engine's preds are lane-order
  artifacts);
* incremental PageRank is as converged as a from-scratch run, certified
  by the residual-defect bound ``||p − p*||_∞ ≤ ||defect||₁ / (1 − d)``;
* everything holds identically with workspace pooling on and off.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.workspace import pooling
from repro.dynamic import (DeltaCsr, GraphUpdate, MutationBatch,
                           WEIGHT_INSENSITIVE, delta_bfs, delta_sssp,
                           incremental_pagerank, random_mutation_batch,
                           unaffected_primitives, unwrap_update)
from repro.dynamic.incremental import pagerank_defect, repair_payload
from repro.graph import from_edges, with_random_weights
from repro.primitives import bfs, pagerank, sssp
from repro.simt import Machine


def _chain(edges, n, weighted, wseed=3):
    g = from_edges(edges, n=n) if edges else from_edges([], n=n)
    if weighted:
        g = with_random_weights(g, seed=wseed)
    return g


# -- MutationBatch semantics --------------------------------------------------


def test_batch_classification():
    b = MutationBatch(deletes=[(0, 1)], inserts=[(2, 3)])
    assert b.structural and not b.weight_only and b.size == 2
    assert list(b.touched_sources) == [0, 2]
    assert list(b.touched_vertices) == [0, 1, 2, 3]
    w = MutationBatch(reweights=[(0, 1)], reweight_values=[2.0])
    assert w.weight_only and not w.structural
    assert unaffected_primitives(w) == WEIGHT_INSENSITIVE
    assert unaffected_primitives(b) == frozenset()


def test_batch_validation():
    with pytest.raises(ValueError):
        MutationBatch(reweights=[(0, 1)])  # missing values
    with pytest.raises(ValueError):
        MutationBatch(inserts=[(0, 1)], all_weights=np.ones(3))
    b = MutationBatch(inserts=[(0, 9)])
    with pytest.raises(ValueError):
        b.validate_for(4)


def test_unwrap_update(tiny_graph):
    assert unwrap_update(tiny_graph) == (tiny_graph, None)
    b = MutationBatch(inserts=[(0, 5)])
    up = GraphUpdate(tiny_graph, b)
    assert unwrap_update(up) == (tiny_graph, b)


# -- DeltaCsr mechanics -------------------------------------------------------


def test_delta_insert_delete_rows():
    g = _chain([(0, 1), (0, 2), (1, 2)], 4, False)
    d = DeltaCsr(g)
    d.apply(MutationBatch(deletes=[(0, 1)], inserts=[(2, 3), (0, 3)]))
    assert d.m == g.m + 1
    nbr, w = d.out_row(0)
    assert list(nbr) == [2, 3] and w is None
    assert list(d.out_row(2)[0]) == [3]
    assert sorted(d.in_row(3)[0]) == [0, 2]   # order is internal detail
    assert list(d.in_row(1)[0]) == []
    assert d.out_degrees[0] == 2 and d.out_degrees[2] == 1


def test_delta_errors_on_absent_edges():
    g = _chain([(0, 1)], 3, True)
    d = DeltaCsr(g)
    with pytest.raises(ValueError):
        d.apply(MutationBatch(deletes=[(1, 0)]))
    with pytest.raises(ValueError):
        d.apply(MutationBatch(reweights=[(0, 2)], reweight_values=[2.0]))
    with pytest.raises(ValueError):
        d.apply(MutationBatch(inserts=[(0, 2)]))  # weighted needs weights


def test_delta_snapshot_matches_rows_and_compacts():
    g = _chain([(0, 1), (1, 2), (2, 0), (2, 3)], 5, True)
    d = DeltaCsr(g)
    d.apply(MutationBatch(deletes=[(2, 0)], inserts=[(3, 4), (0, 4)],
                          insert_weights=[5.0, 7.0],
                          reweights=[(0, 1)], reweight_values=[9.0]))
    snap = d.snapshot()
    assert snap.m == d.m
    for v in range(d.n):
        nbr, w = d.out_row(v)
        lo, hi = snap.indptr[v], snap.indptr[v + 1]
        assert np.array_equal(snap.indices[lo:hi], nbr)
        if w is not None:
            assert np.array_equal(snap.artifacts.weights64[lo:hi], w)
    compacted = d.compact()
    assert compacted is snap
    assert d.base is snap and not d.pending and d.log_edges == 0
    assert d.compactions == 1
    # post-compaction reads come straight from the new base
    assert np.array_equal(d.out_row(0)[0], snap.indices[:snap.indptr[1]])


def test_weight_only_snapshot_shares_topology():
    g = _chain([(0, 1), (1, 2)], 3, True)
    d = DeltaCsr(g)
    d.apply(MutationBatch(reweights=[(0, 1)], reweight_values=[3.5]))
    snap = d.snapshot()
    assert snap.indptr is g.indptr and snap.indices is g.indices
    assert float(snap.artifacts.weights64[0]) == 3.5


def test_all_weights_rebases():
    g = _chain([(0, 1), (1, 2)], 3, True)
    d = DeltaCsr(g)
    vals = np.array([2.0, 4.0])
    d.apply(MutationBatch(all_weights=vals))
    snap = d.snapshot()
    assert np.array_equal(snap.artifacts.weights64, vals)
    assert snap.indices is g.indices
    assert d.base is snap and d.compactions == 1


def test_compaction_policy_is_log_threshold():
    g = _chain([(i, i + 1) for i in range(50)], 51, False)
    d = DeltaCsr(g, compact_threshold=0.05)
    d.apply(MutationBatch(deletes=[(0, 1)]))
    assert not d.should_compact()        # floor is 64 mutations
    d.log_edges = 64
    assert d.should_compact()


def test_snapshot_charges_simulated_clock():
    g = _chain([(0, 1), (1, 2), (2, 0)], 3, False)
    d = DeltaCsr(g)
    d.apply(MutationBatch(inserts=[(0, 2)]))
    machine = Machine()
    d.snapshot(machine=machine)
    assert machine.elapsed_ms() > 0
    assert machine.counters.bytes_moved > 0


def test_random_mutation_batch_deterministic(kron_graph):
    a = random_mutation_batch(kron_graph, 42, frac=0.01)
    b = random_mutation_batch(kron_graph, 42, frac=0.01)
    assert np.array_equal(a.inserts, b.inserts)
    assert np.array_equal(a.deletes, b.deletes)
    assert a.structural and a.size > 0


# -- incremental-repair equivalence (hypothesis) ------------------------------


@st.composite
def mutation_scenarios(draw, weighted):
    n = draw(st.integers(min_value=4, max_value=20))
    m = draw(st.integers(min_value=3, max_value=50))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=m, max_size=m))
    edges = [(u, v) for u, v in edges if u != v]
    src = draw(st.integers(0, n - 1))
    steps = draw(st.lists(st.tuples(
        st.integers(0, 2 ** 16),      # mutation seed
        st.booleans(),                # add reweights (weighted only)
        st.booleans(),                # compact after this step
    ), min_size=1, max_size=4))
    wseed = draw(st.integers(0, 2 ** 16)) if weighted else 0
    return n, edges, src, steps, wseed


def _step_batch(csr, seed, with_reweights):
    """One interleaved batch: deletes+inserts (via the library helper),
    plus reweights of surviving edges when asked."""
    b = random_mutation_batch(csr, seed, frac=0.15)
    if not with_reweights or csr.edge_values is None or not csr.m:
        return b
    rng = np.random.default_rng(seed + 1)
    eids = rng.choice(csr.m, size=max(1, csr.m // 8), replace=False)
    pairs = np.unique(np.stack(
        [csr.edge_sources[eids], csr.indices[eids]], axis=1), axis=0)
    dead = {tuple(p) for p in b.deletes}
    keep = np.array([tuple(p) not in dead for p in pairs], dtype=bool)
    pairs = pairs[keep]
    if not len(pairs):
        return b
    vals = rng.integers(1, 64, size=len(pairs)).astype(np.float64)
    return MutationBatch(inserts=b.inserts,
                         insert_weights=b.insert_weights,
                         deletes=b.deletes, reweights=pairs,
                         reweight_values=vals)


def _pred_valid(g, labels, preds, src, unit):
    """Support oracle: every reached non-source vertex's pred is an
    in-neighbor that exactly supports its label."""
    csc = g.csc
    for v in range(g.n):
        reach = labels[v] >= 0 if unit else np.isfinite(labels[v])
        if not reach or v == src:
            continue
        p = int(preds[v])
        lo, hi = int(csc.indptr[v]), int(csc.indptr[v + 1])
        in_nbr = csc.indices[lo:hi]
        hit = in_nbr == p
        assert hit.any(), f"pred {p} of {v} is not an in-neighbor"
        if unit:
            assert labels[p] == labels[v] - 1
        else:
            w = csc.artifacts.weights64[lo:hi][hit]
            assert (labels[p] + w == labels[v]).any()


def _run_scenario(scenario, weighted, use_pooling):
    n, edges, src, steps, wseed = scenario
    g = _chain(edges, n, weighted, wseed=wseed)
    with pooling(use_pooling):
        delta = DeltaCsr(g)
        if weighted:
            ref = sssp(g, src, use_priority_queue=False)
        else:
            ref = bfs(g, src, idempotent=False, direction="push")
        labels = ref.arrays["labels"]
        preds = ref.arrays["preds"]
        pr_ref = pagerank(delta.snapshot())
        rank = pr_ref.arrays["rank"]
        for seed, rw, do_compact in steps:
            before = delta.snapshot()
            batch = _step_batch(before, seed, rw and weighted)
            delta.apply(batch)
            snap = delta.snapshot()
            # shortest-path repair vs from-scratch on the compacted graph
            if weighted:
                out = delta_sssp(delta, src, labels, preds, batch)
                scratch = sssp(snap, src, use_priority_queue=False)
            else:
                out = delta_bfs(delta, src, labels, preds, batch)
                scratch = bfs(snap, src, idempotent=False,
                              direction="push")
            if out is not None:
                r_labels, r_preds = out
                assert np.array_equal(r_labels, scratch.arrays["labels"])
                assert r_labels.dtype == scratch.arrays["labels"].dtype
                _pred_valid(snap, r_labels, r_preds, src,
                            unit=not weighted)
            # PageRank repair: as converged as from-scratch, certified
            new_rank = incremental_pagerank(before, delta, rank, batch)
            tol = 0.01 / max(1, n)
            d_inc = float(np.abs(pagerank_defect(snap, new_rank)).sum())
            assert d_inc <= 3.0 * n * tol
            pr_scratch = pagerank(snap)
            d_scr = float(np.abs(
                pagerank_defect(snap, pr_scratch.arrays["rank"])).sum())
            diff = float(np.abs(
                new_rank - pr_scratch.arrays["rank"]).max())
            assert diff <= (d_inc + d_scr) / (1.0 - 0.85) + 1e-12
            labels, preds = (scratch.arrays["labels"],
                             scratch.arrays["preds"])
            rank = new_rank
            if do_compact:
                assert delta.compact() is snap


@given(mutation_scenarios(weighted=False), st.booleans())
@settings(max_examples=25, deadline=None)
def test_delta_bfs_equivalence(scenario, use_pooling):
    _run_scenario(scenario, weighted=False, use_pooling=use_pooling)


@given(mutation_scenarios(weighted=True), st.booleans())
@settings(max_examples=25, deadline=None)
def test_delta_sssp_equivalence(scenario, use_pooling):
    _run_scenario(scenario, weighted=True, use_pooling=use_pooling)


# -- repair_payload (the serving entry point) ---------------------------------


def test_repair_payload_weight_only_keeps_insensitive(kron_weighted):
    batch = MutationBatch(all_weights=np.arange(
        1.0, kron_weighted.m + 1.0))
    old = {"labels": np.zeros(3), "preds": np.zeros(3)}
    arrays, repaired = repair_payload("bfs", {"src": 0}, old,
                                      kron_weighted, kron_weighted, batch)
    assert repaired and arrays is not old
    assert np.array_equal(arrays["labels"], old["labels"])


def test_repair_payload_falls_back_on_huge_damage():
    # a path graph loses its first edge: everything downstream is damaged
    n = 200
    g = _chain([(i, i + 1) for i in range(n - 1)], n, False)
    res = bfs(g, 0, idempotent=False, direction="push")
    d = DeltaCsr(g)
    batch = MutationBatch(deletes=[(0, 1)])
    d.apply(batch)
    arrays, repaired = repair_payload(
        "bfs", {"src": 0}, dict(res.arrays), g, d, batch)
    assert not repaired  # damage closure tripped the fallback
    scratch = bfs(d.snapshot(), 0, idempotent=False, direction="push")
    assert np.array_equal(arrays["labels"], scratch.arrays["labels"])


def test_repair_payload_charges_machine(kron_graph):
    res = bfs(kron_graph, 0, idempotent=False, direction="push")
    d = DeltaCsr(kron_graph)
    batch = random_mutation_batch(kron_graph, 3, frac=0.002)
    d.apply(batch)
    machine = Machine()
    repair_payload("bfs", {"src": 0}, dict(res.arrays), kron_graph, d,
                   batch, machine=machine)
    assert machine.elapsed_ms() > 0
