"""Static BSP-contract linter: one violating and one clean case per rule,
plus suppression and file-walking behavior."""

import textwrap

from repro.analysis import RULES, RULES_BY_ID, lint_paths, lint_source


def _lint(body: str):
    return lint_source(textwrap.dedent(body), "case.py")


def _rules(violations):
    return {v.rule.name for v in violations}


# ---------------------------------------------------------------- registry

def test_rule_registry_ids_are_stable():
    assert RULES["raw-write"].id == "GR001"
    assert RULES["idempotent-accumulate"].id == "GR002"
    assert RULES["functor-state"].id == "GR003"
    assert RULES["scalar-loop"].id == "GR004"
    assert RULES["unregistered-array"].id == "GR005"
    assert RULES_BY_ID["GR001"] is RULES["raw-write"]


def test_violation_format_mentions_rule_id():
    (v,) = _lint("""
        class XFunctor(Functor):
            def apply_edge(self, P, src, dst, eid):
                P.labels[dst] = 0
        """)
    assert v.format().startswith("case.py:4: GR001[raw-write]")


# ------------------------------------------------------- GR001 raw-write

def test_raw_write_fancy_index_flagged():
    vs = _lint("""
        class RacyFunctor(Functor):
            def apply_edge(self, P, src, dst, eid):
                P.labels[dst] = depth
        """)
    assert _rules(vs) == {"raw-write"}


def test_raw_write_through_alias_flagged():
    vs = _lint("""
        class RacyFunctor(Functor):
            def apply_edge(self, P, src, dst, eid):
                labels = P.labels
                labels[dst] = depth
        """)
    assert _rules(vs) == {"raw-write"}


def test_raw_write_ufunc_at_flagged():
    vs = _lint("""
        import numpy as np
        class RacyFunctor(Functor):
            def apply_edge(self, P, src, dst, eid):
                np.add.at(P.sigma, dst, 1.0)
        """)
    assert "raw-write" in _rules(vs)


def test_atomic_routed_write_is_clean():
    vs = _lint("""
        from repro.core import atomics
        class GoodFunctor(Functor):
            def apply_edge(self, P, src, dst, eid):
                return atomics.atomic_min(P.labels, dst, P.labels[src] + 1,
                                          P.machine)
        """)
    assert vs == []


def test_local_array_write_is_clean():
    """Writes into per-lane temporaries are not problem-state writes."""
    vs = _lint("""
        import numpy as np
        class GoodFunctor(Functor):
            def apply_edge(self, P, src, dst, eid):
                keep = np.zeros(len(src), dtype=bool)
                keep[0] = True
                return keep
        """)
    assert vs == []


# ------------------------------------- GR002 idempotent-accumulate

def test_idempotent_accumulate_flagged():
    vs = _lint("""
        class BadFunctor(Functor):
            idempotent = True
            def apply_edge(self, P, src, dst, eid):
                P.sigma[dst] += 1.0
        """)
    assert "idempotent-accumulate" in _rules(vs)


def test_idempotent_atomic_add_flagged():
    """Accumulation double-counts under duplicate applies even when routed
    through atomics — idempotent advance may apply a lane twice."""
    vs = _lint("""
        from repro.core import atomics
        class BadFunctor(Functor):
            idempotent = True
            def apply_edge(self, P, src, dst, eid):
                atomics.atomic_add(P.sigma, dst, 1.0, P.machine)
        """)
    assert _rules(vs) == {"idempotent-accumulate"}


def test_non_idempotent_accumulate_not_gr002():
    vs = _lint("""
        from repro.core import atomics
        class OkFunctor(Functor):
            idempotent = False
            def apply_edge(self, P, src, dst, eid):
                atomics.atomic_add(P.sigma, dst, 1.0, P.machine)
        """)
    assert "idempotent-accumulate" not in _rules(vs)


# -------------------------------------------- GR003 functor-state

def test_functor_state_mutation_flagged():
    vs = _lint("""
        class StatefulFunctor(Functor):
            def apply_edge(self, P, src, dst, eid):
                self.seen = dst
        """)
    assert _rules(vs) == {"functor-state"}


def test_functor_init_state_is_clean():
    """Configuration set in __init__ (pre-kernel) is fine; only mutation
    inside kernel methods breaks replayability."""
    vs = _lint("""
        class ParamFunctor(Functor):
            def __init__(self, depth):
                self.depth = depth
            def cond_edge(self, P, src, dst, eid):
                return P.labels[dst] < self.depth
        """)
    assert vs == []


# ---------------------------------------------- GR004 scalar-loop

def test_scalar_loop_flagged():
    vs = _lint("""
        class SlowFunctor(Functor):
            def apply_vertex(self, P, v):
                for x in v:
                    pass
        """)
    assert _rules(vs) == {"scalar-loop"}


def test_while_loop_flagged():
    vs = _lint("""
        class SlowFunctor(Functor):
            def apply_vertex(self, P, v):
                while True:
                    break
        """)
    assert _rules(vs) == {"scalar-loop"}


def test_vectorized_body_is_clean():
    vs = _lint("""
        import numpy as np
        class FastFunctor(Functor):
            def apply_vertex(self, P, v):
                return P.depths[v] < np.int64(4)
        """)
    assert vs == []


# ----------------------------------------- GR005 unregistered-array

def test_unregistered_array_flagged():
    vs = _lint("""
        import numpy as np
        class ScratchProblem(ProblemBase):
            def __init__(self, graph):
                super().__init__(graph)
                self.scratch = np.zeros(graph.n)
        """)
    assert _rules(vs) == {"unregistered-array"}


def test_registered_array_is_clean():
    vs = _lint("""
        import numpy as np
        class GoodProblem(ProblemBase):
            def __init__(self, graph):
                super().__init__(graph)
                self.add_vertex_array("labels", np.int64, -1)
        """)
    assert vs == []


def test_non_problem_class_not_checked():
    vs = _lint("""
        import numpy as np
        class Helper:
            def __init__(self):
                self.buf = np.zeros(8)
        """)
    assert vs == []


# -------------------------------------------------- suppression

def test_allow_comment_on_line_suppresses():
    vs = _lint("""
        class OkFunctor(Functor):
            def apply_vertex(self, P, v):
                P.ids[v] = v  # lint: allow(raw-write)
        """)
    assert vs == []


def test_allow_comment_on_previous_line_suppresses():
    vs = _lint("""
        class OkFunctor(Functor):
            def apply_vertex(self, P, v):
                # lint: allow(raw-write)
                P.ids[v] = v
        """)
    assert vs == []


def test_allow_comment_wrong_rule_does_not_suppress():
    vs = _lint("""
        class BadFunctor(Functor):
            def apply_vertex(self, P, v):
                P.ids[v] = v  # lint: allow(scalar-loop)
        """)
    assert _rules(vs) == {"raw-write"}


# ----------------------------------------------- GR000 parse-error

def test_unparseable_source_is_a_violation_not_a_crash():
    (v,) = lint_source("def broken(:", "bad.py")
    assert v.rule.id == "GR000"
    assert "syntax error" in v.message


# ------------------------------------------------- path walking

def test_lint_paths_missing_path_raises(tmp_path):
    import pytest
    with pytest.raises(FileNotFoundError, match="no_such"):
        lint_paths([str(tmp_path / "no_such")])



def test_lint_paths_walks_directories(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("class F(Functor):\n"
                   "    def apply_edge(self, P, src, dst, eid):\n"
                   "        P.x[dst] = 1\n")
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("class G(Functor):\n"
                                                      "    pass\n")
    vs = lint_paths([str(tmp_path)])
    assert len(vs) == 1
    assert vs[0].file.endswith("bad.py")


def test_shipped_package_lints_clean():
    """The acceptance bar: the tree we ship carries no unsuppressed
    violations."""
    import repro
    import os
    pkg = os.path.dirname(repro.__file__)
    assert lint_paths([pkg]) == []
