"""Effect analysis (repro analyze, DESIGN §12): abstract interpretation
of synthetic functor bodies into effect summaries and rules GR006-GR012,
plus the registry hooks (array_specs, effect_summary) and the extended
GR005 check."""

import textwrap

import numpy as np
import pytest

from repro.analysis import RULES, RULES_BY_ID, lint_source
from repro.analysis.effects import (DTYPE_LEVELS, analyze_module_source,
                                    dtype_level, extract_problem_arrays,
                                    summarize_functor_class)


def _effects(body: str):
    return analyze_module_source(textwrap.dedent(body), "case.py")


def _rules(effects):
    return {v.rule.name for v in effects.violations}


#: a registered problem class shared by most synthetic cases
_PROBLEM = """
    import numpy as np
    from repro.core import atomics

    class CaseProblem(ProblemBase):
        relaxed_arrays = frozenset({"preds"})
        def __init__(self, graph):
            super().__init__(graph)
            self.add_vertex_array("labels", np.int64, -1)
            self.add_vertex_array("ranks", np.float64, 0.0)
            self.add_vertex_array("small", np.int32, 0)
            self.add_vertex_array("preds", np.int64, -1)
            self.add_edge_array("flags", bool, False)
"""


# ---------------------------------------------------------------- registry

def test_new_rule_registry_ids_are_stable():
    assert RULES["cond-impure"].id == "GR006"
    assert RULES["nondeterministic-call"].id == "GR007"
    assert RULES["narrowing-store"].id == "GR008"
    assert RULES["unrouted-store"].id == "GR009"
    assert RULES["fused-write-hazard"].id == "GR010"
    assert RULES["atomic-mix"].id == "GR011"
    assert RULES["unknown-effect"].id == "GR012"
    assert RULES_BY_ID["GR006"] is RULES["cond-impure"]


def test_static_registry_extraction():
    eff = _effects(_PROBLEM)
    specs = eff.problems["CaseProblem"]
    assert specs["labels"].kind == "vertex"
    assert specs["labels"].dtype == "int64"
    assert specs["flags"].kind == "edge"
    assert specs["flags"].dtype == "bool"
    assert eff.relaxed == frozenset({"preds"})


def test_registry_matches_runtime_array_specs(tiny_graph):
    """The static registry agrees with the live array_specs() hook."""
    import inspect

    from repro.primitives.bfs import BfsProblem

    src = inspect.getsource(inspect.getmodule(BfsProblem))
    eff = analyze_module_source(src, "bfs.py")
    problem = BfsProblem(tiny_graph)
    runtime = problem.array_specs()
    static = eff.problems["BfsProblem"]
    assert set(static) == set(runtime)
    for name, spec in static.items():
        assert spec.dtype == runtime[name]["dtype"], name
        assert spec.kind == runtime[name]["kind"], name
        assert runtime[name]["relaxed"] == (name in eff.relaxed), name


def test_dtype_lattice_ordering():
    assert dtype_level("bool") < dtype_level("int32")
    assert dtype_level("int32") < dtype_level("int64")
    assert dtype_level("int64") < dtype_level("float32")
    assert dtype_level("float32") < dtype_level("float64")
    assert dtype_level("made_up") is None
    assert dtype_level(None) is None
    assert DTYPE_LEVELS["float64"] == max(DTYPE_LEVELS.values())


# -------------------------------------------------- summaries: read/write

def test_summary_reads_and_atomic_writes():
    eff = _effects(_PROBLEM + """
    class GoodFunctor(Functor):
        def cond_edge(self, P, src, dst, eid):
            return P.labels[dst] < 0
        def apply_edge(self, P, src, dst, eid):
            atomics.atomic_min(P.labels, dst, P.labels[src] + 1, P.machine)
    """)
    s = eff.functors["GoodFunctor"]
    assert s.reads() == {"labels"}
    assert s.write_arrays() == {"labels"}
    kinds = s.write_kinds()["labels"]
    assert kinds["kinds"] == {"atomic"}
    assert kinds["ops"] == {"min"}
    assert s.methods["cond_edge"].pure
    assert _rules(eff) == set()


def test_alias_chain_tracked_to_write():
    """x = P.labels; y = x; y[dst] = v is still a labels write."""
    eff = _effects(_PROBLEM + """
    class AliasFunctor(Functor):
        def apply_edge(self, P, src, dst, eid):
            x = P.labels
            y = x
            y[dst] = 0
    """)
    s = eff.functors["AliasFunctor"]
    assert s.write_arrays() == {"labels"}
    # the legacy GR001 pass owns the plain store; no GR009 double-report
    assert "unrouted-store" not in _rules(eff)


def test_fancy_index_subscript_is_a_copy_not_an_alias():
    """v = P.labels[src] gathers a copy (numpy fancy indexing); in-place
    arithmetic on it is private, exactly the SSSP pooled pattern."""
    eff = _effects(_PROBLEM + """
    class GatherFunctor(Functor):
        def apply_edge(self, P, src, dst, eid):
            v = P.labels[src]
            np.add(v, 1, out=v)
            atomics.atomic_min(P.labels, dst, v, P.machine)
    """)
    s = eff.functors["GatherFunctor"]
    assert s.write_kinds()["labels"]["kinds"] == {"atomic"}
    assert _rules(eff) == set()


def test_slice_subscript_is_a_view_alias():
    eff = _effects(_PROBLEM + """
    class ViewFunctor(Functor):
        def apply_vertex(self, P, v):
            head = P.ranks[1:]
            np.add(head, 1.0, out=head)
    """)
    assert eff.functors["ViewFunctor"].write_arrays() == {"ranks"}
    assert "unrouted-store" in _rules(eff)


def test_augmented_assign_through_alias_is_inplace_write():
    eff = _effects(_PROBLEM + """
    class AugFunctor(Functor):
        def apply_vertex(self, P, v):
            r = P.ranks
            r += 1.0
    """)
    s = eff.functors["AugFunctor"]
    assert s.write_kinds()["ranks"]["kinds"] == {"augstore"}
    assert "unrouted-store" in _rules(eff)


# ----------------------------------------------------- GR006 cond-impure

def test_cond_write_flagged():
    eff = _effects(_PROBLEM + """
    class BadCondFunctor(Functor):
        def cond_edge(self, P, src, dst, eid):
            P.labels[dst] = 0
            return P.labels[dst] < 0
    """)
    assert "cond-impure" in _rules(eff)


def test_cond_outside_call_flagged():
    eff = _effects(_PROBLEM + """
    class OpaqueCondFunctor(Functor):
        def cond_vertex(self, P, v):
            return mystery(v)
    """)
    assert "cond-impure" in _rules(eff)


def test_pure_cond_is_clean():
    eff = _effects(_PROBLEM + """
    class PureCondFunctor(Functor):
        def cond_edge(self, P, src, dst, eid):
            return np.logical_and(P.labels[src] >= 0, P.labels[dst] < 0)
    """)
    assert eff.functors["PureCondFunctor"].methods["cond_edge"].pure
    assert _rules(eff) == set()


# ------------------------------------------ GR007 nondeterministic-call

def test_np_random_flagged():
    eff = _effects(_PROBLEM + """
    class CoinFunctor(Functor):
        def apply_vertex(self, P, v):
            keep = np.random.rand(len(v)) < 0.5
            return keep
    """)
    assert "nondeterministic-call" in _rules(eff)
    assert not eff.functors["CoinFunctor"].methods["apply_vertex"].deterministic


def test_time_module_flagged():
    eff = _effects(_PROBLEM + """
    import time
    class ClockFunctor(Functor):
        def apply_vertex(self, P, v):
            t = time.perf_counter()
            return None
    """)
    assert "nondeterministic-call" in _rules(eff)


# --------------------------------------------- GR008 narrowing-store

def test_narrowing_store_flagged():
    eff = _effects(_PROBLEM + """
    class NarrowFunctor(Functor):
        def apply_vertex(self, P, v):
            P.small[v] = 1.5
    """)
    assert "narrowing-store" in _rules(eff)


def test_widening_store_is_not_narrowing():
    eff = _effects(_PROBLEM + """
    class WidenFunctor(Functor):
        def apply_vertex(self, P, v):
            P.ranks[v] = 1.5  # lint: allow(raw-write)
    """)
    assert "narrowing-store" not in _rules(eff)


def test_int_literal_fits_any_dtype():
    eff = _effects(_PROBLEM + """
    class IntFunctor(Functor):
        def apply_vertex(self, P, v):
            P.small[v] = 1  # lint: allow(raw-write)
    """)
    assert "narrowing-store" not in _rules(eff)


def test_division_narrows_into_int_array():
    """x / y is float64 in numpy regardless of operands."""
    eff = _effects(_PROBLEM + """
    class DivFunctor(Functor):
        def apply_vertex(self, P, v):
            P.labels[v] = P.labels[v] / 2
    """)
    assert "narrowing-store" in _rules(eff)


# --------------------------------------------- GR009 unrouted-store

@pytest.mark.parametrize("stmt", [
    "np.add(P.ranks, 1.0, out=P.ranks)",
    "np.copyto(P.ranks, P.ranks)",
    "P.ranks.fill(0.0)",
])
def test_inplace_mutations_flagged(stmt):
    eff = _effects(_PROBLEM + f"""
    class InplaceFunctor(Functor):
        def apply_vertex(self, P, v):
            {stmt}
    """)
    assert "unrouted-store" in _rules(eff)


def test_gr009_not_reported_where_gr001_already_fires():
    """A plain fancy-index store is GR001's finding; the deep engine must
    not double-report it as GR009."""
    eff = _effects(_PROBLEM + """
    class RawFunctor(Functor):
        def apply_vertex(self, P, v):
            P.labels[v] = 0
    """)
    assert "unrouted-store" not in _rules(eff)


def test_local_array_mutation_is_clean():
    eff = _effects(_PROBLEM + """
    class LocalFunctor(Functor):
        def apply_vertex(self, P, v):
            buf = np.zeros(len(v))
            np.add(buf, 1.0, out=buf)
            buf.fill(0.0)
            return buf > 0
    """)
    assert _rules(eff) == set()


# ------------------------------------------ GR010 fused-write-hazard

def test_atomic_plus_plain_store_on_same_array_flagged():
    eff = _effects(_PROBLEM + """
    class MixedFunctor(Functor):
        def apply_edge(self, P, src, dst, eid):
            atomics.atomic_add(P.ranks, dst, 1.0, P.machine)
            P.ranks[src] = 0.0  # lint: allow(raw-write)
    """)
    assert "fused-write-hazard" in _rules(eff)


def test_atomic_and_store_on_different_arrays_clean():
    eff = _effects(_PROBLEM + """
    class SplitFunctor(Functor):
        def apply_edge(self, P, src, dst, eid):
            atomics.atomic_add(P.ranks, dst, 1.0, P.machine)
            P.preds[dst] = src  # lint: allow(raw-write)
    """)
    assert "fused-write-hazard" not in _rules(eff)


# ------------------------------------------------- GR011 atomic-mix

def test_conflicting_reductions_flagged():
    eff = _effects(_PROBLEM + """
    class PingPongFunctor(Functor):
        def apply_edge(self, P, src, dst, eid):
            atomics.atomic_min(P.labels, dst, src, P.machine)
            atomics.atomic_max(P.labels, src, dst, P.machine)
    """)
    assert "atomic-mix" in _rules(eff)


def test_single_reduction_per_method_clean():
    """Min in one functor, max in another: barrier-sequenced, no mix."""
    eff = _effects(_PROBLEM + """
    class MinFunctor(Functor):
        def apply_edge(self, P, src, dst, eid):
            atomics.atomic_min(P.labels, dst, src, P.machine)
    class MaxFunctor(Functor):
        def apply_edge(self, P, src, dst, eid):
            atomics.atomic_max(P.labels, dst, src, P.machine)
    """)
    assert "atomic-mix" not in _rules(eff)


def test_exch_on_non_relaxed_array_flagged():
    eff = _effects(_PROBLEM + """
    class ExchFunctor(Functor):
        def apply_edge(self, P, src, dst, eid):
            atomics.atomic_exch_gather(P.labels, dst, src, P.machine)
    """)
    assert "atomic-mix" in _rules(eff)


def test_exch_on_relaxed_array_clean():
    eff = _effects(_PROBLEM + """
    class RelaxedExchFunctor(Functor):
        def apply_edge(self, P, src, dst, eid):
            atomics.atomic_exch_gather(P.preds, dst, src, P.machine)
    """)
    assert "atomic-mix" not in _rules(eff)


# --------------------------------------------- GR012 unknown-effect

def test_problem_escape_flagged():
    eff = _effects(_PROBLEM + """
    class EscapeFunctor(Functor):
        def apply_vertex(self, P, v):
            helper(P, v)
    """)
    assert "unknown-effect" in _rules(eff)


def test_problem_attribute_rebind_flagged():
    eff = _effects(_PROBLEM + """
    class RebindFunctor(Functor):
        def apply_vertex(self, P, v):
            P.labels = np.zeros(len(v), dtype=np.int64)
    """)
    assert "unknown-effect" in _rules(eff)


def test_setattr_flagged():
    eff = _effects(_PROBLEM + """
    class DynamicFunctor(Functor):
        def apply_vertex(self, P, v):
            setattr(P, "labels", v)
    """)
    assert "unknown-effect" in _rules(eff)


def test_scalar_attribute_mutation_flagged():
    eff = _effects(_PROBLEM + """
    class CounterFunctor(Functor):
        def apply_vertex(self, P, v):
            P.counter += 1
    """)
    assert "unknown-effect" in _rules(eff)


# ---------------------- GR002 extension: accumulate through the deep engine

def test_idempotent_inplace_accumulate_flagged():
    """alias += v accumulation the legacy syntactic GR002 misses."""
    eff = _effects(_PROBLEM + """
    class SneakyFunctor(Functor):
        idempotent = True
        def apply_vertex(self, P, v):
            r = P.ranks
            r += 1.0
    """)
    assert "idempotent-accumulate" in _rules(eff)


# ------------------------------------------------- live-class hooks

def test_summarize_functor_class_on_shipped_primitive():
    from repro.primitives.sssp import _RelaxFunctor

    s = summarize_functor_class(_RelaxFunctor)
    assert s.name == "_RelaxFunctor"
    assert "labels" in s.write_arrays()
    assert s.write_kinds()["labels"]["ops"] == {"min"}


def test_effect_summary_classmethod_caches():
    from repro.primitives.sssp import _RelaxFunctor

    first = _RelaxFunctor.effect_summary()
    assert first is _RelaxFunctor.effect_summary()
    assert first.write_arrays() >= {"labels", "preds"}


def test_effect_summary_not_shared_across_subclasses():
    from repro.primitives.bfs import _AtomicBfsFunctor, _IdempotentBfsFunctor

    atomic = _AtomicBfsFunctor.effect_summary()
    idem = _IdempotentBfsFunctor.effect_summary()
    # each class caches its own summary (cls.__dict__, not inheritance)
    assert atomic is not idem
    assert atomic.name == "_AtomicBfsFunctor"
    assert idem.name == "_IdempotentBfsFunctor"
    assert idem.idempotent and not atomic.idempotent
    assert "visited" in atomic.write_arrays()
    assert "visited" not in idem.write_arrays()


# -------------------------------------------- GR005 extension + suppression

def test_gr005_flags_np_derive_functions():
    vs = lint_source(textwrap.dedent("""
        import numpy as np
        class DeriveProblem(ProblemBase):
            def __init__(self, graph):
                super().__init__(graph)
                self.norm = np.maximum(graph.out_degrees, 1)
        """), "case.py")
    assert {v.rule.name for v in vs} == {"unregistered-array"}


def test_gr005_flags_astype_chain():
    vs = lint_source(textwrap.dedent("""
        import numpy as np
        class CastProblem(ProblemBase):
            def __init__(self, graph):
                super().__init__(graph)
                self.deg = np.maximum(graph.out_degrees, 1).astype(np.float64)
        """), "case.py")
    assert {v.rule.name for v in vs} == {"unregistered-array"}


def test_gr005_ignores_graph_rooted_assignment():
    """Borrowing a graph-owned array is not an unregistered allocation."""
    vs = lint_source(textwrap.dedent("""
        class BorrowProblem(ProblemBase):
            def __init__(self, graph):
                super().__init__(graph)
                self.weights = graph.weight_or_ones()
        """), "case.py")
    assert vs == []


def test_suppression_by_rule_id():
    vs = lint_source(textwrap.dedent("""
        class OkFunctor(Functor):
            def apply_vertex(self, P, v):
                P.ids[v] = v  # lint: allow(GR001)
        """), "case.py")
    assert vs == []


def test_extract_problem_arrays_requires_string_name():
    import ast

    tree = ast.parse(textwrap.dedent("""
        class DynProblem(ProblemBase):
            def __init__(self, graph, name):
                self.add_vertex_array(name, np.int64, 0)
        """))
    arrays, relaxed = extract_problem_arrays(tree.body[0])
    assert arrays == {}
    assert relaxed == frozenset()
