"""Property tests: extension primitives vs. the serial reference oracles.

Each hypothesis-generated random graph is pushed through the library
primitive AND the plain-Python oracle in :mod:`repro.reference`; the
structural invariant (proper coloring, maximal independence, exact core
numbers, exact triangle count, label-propagation consistency) must hold
on every example — pooled and unpooled.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import reference
from repro.core.workspace import pooling
from repro.graph import from_edges
from repro.primitives import (color, kcore, label_propagation, mis,
                              triangle_count)


@st.composite
def undirected_graphs(draw, max_n=24, max_m=90):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=m, max_size=m))
    # drop self-loops: coloring/MIS invariants are stated on simple graphs
    edges = [(a, b) for a, b in edges if a != b]
    return from_edges(edges, n=n, undirected=True) if edges \
        else from_edges([], n=n)


@given(undirected_graphs(), st.integers(0, 2**16), st.booleans())
@settings(max_examples=50, deadline=None)
def test_coloring_is_proper(g, seed, pooled):
    with pooling(pooled):
        r = color(g, seed=seed)
    assert reference.is_proper_coloring(g, r.colors)
    assert r.num_colors >= (1 if g.n else 0)


@given(undirected_graphs(), st.integers(0, 2**16), st.booleans())
@settings(max_examples=50, deadline=None)
def test_mis_is_maximal_independent(g, seed, pooled):
    with pooling(pooled):
        r = mis(g, seed=seed)
    members = np.flatnonzero(r.in_set)
    assert reference.is_maximal_independent_set(g, members)
    assert r.set_size == len(members)


@given(undirected_graphs(), st.booleans())
@settings(max_examples=50, deadline=None)
def test_kcore_matches_reference_exactly(g, pooled):
    with pooling(pooled):
        r = kcore(g)
    assert r.core_numbers.tolist() == reference.core_numbers(g)


@given(undirected_graphs(), st.booleans())
@settings(max_examples=50, deadline=None)
def test_triangles_match_reference_exactly(g, pooled):
    with pooling(pooled):
        r = triangle_count(g)
    assert r.total == reference.triangle_count(g)
    # each triangle credits all three corners
    assert int(r.per_vertex.sum()) == 3 * r.total


@given(undirected_graphs(), st.integers(0, 2**16), st.booleans())
@settings(max_examples=50, deadline=None)
def test_label_prop_labels_consistent_and_stable(g, seed, pooled):
    max_iterations = 60
    with pooling(pooled):
        r = label_propagation(g, seed=seed, max_iterations=max_iterations)
    # labels always name a vertex of the same connected component
    assert reference.label_prop_consistent(g, r.labels)
    if r.iterations < max_iterations:
        # converged runs sit at the synchronous-LP fixed point; capped
        # runs may have stopped mid-oscillation, so only check then
        assert reference.label_prop_is_stable(g, r.labels)


def test_oracle_rejects_bad_certificates(tiny_graph):
    g = tiny_graph
    assert not reference.is_proper_coloring(g, [0] * g.n)
    assert not reference.is_proper_coloring(g, [0])           # wrong length
    assert not reference.is_proper_coloring(g, [-1] * g.n)    # negative
    assert not reference.is_independent_set(g, [0, 1])        # edge 0-1
    assert reference.is_independent_set(g, [2, 3, 5])
    # independent but not maximal: vertex 5 (isolated) could join
    assert not reference.is_maximal_independent_set(g, [0, 2, 4])
    assert reference.is_maximal_independent_set(g, [0, 2, 4, 5])
    # label from another component
    bad = list(range(g.n))
    bad[5] = 0
    assert not reference.label_prop_consistent(g, bad)
    assert not reference.label_prop_consistent(g, [g.n] * g.n)
