"""SIMT substrate tests: machine makespan model, counters, fusion,
device primitives."""

import numpy as np
import pytest

from repro.simt import GPUSpec, Machine, calib, primitives


# -- machine -------------------------------------------------------------------


def test_spec_lanes():
    spec = GPUSpec()
    assert spec.lanes == 15 * 192
    assert spec.warps_per_cta == 8


def test_cycles_to_ms():
    spec = GPUSpec()
    assert spec.cycles_to_ms(spec.clock_ghz * 1e9) == pytest.approx(1000.0)


def test_makespan_balanced():
    m = Machine()
    costs = np.full(150, 10.0)
    # 150 CTAs over 15 SMs: average bound dominates
    assert m.makespan_cycles(costs) == pytest.approx(100.0)


def test_makespan_imbalanced():
    m = Machine()
    costs = np.array([1000.0] + [1.0] * 14)
    # one huge CTA dominates
    assert m.makespan_cycles(costs) == pytest.approx(1000.0)


def test_makespan_empty():
    assert Machine().makespan_cycles(np.zeros(0)) == 0.0


def test_launch_records_kernel():
    m = Machine()
    m.launch("k", body_cycles=100.0, items=5)
    assert m.counters.kernel_launches == 1
    rec = m.counters.kernels[0]
    assert rec.name == "k"
    assert rec.items == 5
    assert rec.cycles > 100.0  # launch overhead added


def test_hardwired_skips_dispatch_overhead():
    soft = Machine()
    hard = Machine(hardwired=True)
    soft.launch("k", body_cycles=0.0)
    hard.launch("k", body_cycles=0.0)
    assert hard.counters.cycles < soft.counters.cycles
    assert soft.counters.cycles - hard.counters.cycles == pytest.approx(
        calib.FRAMEWORK_DISPATCH_CYCLES)


def test_fusion_single_launch():
    m = Machine()
    with m.fused("fused"):
        m.launch("a", body_cycles=10.0, items=1)
        m.launch("b", body_cycles=20.0, items=2)
    assert m.counters.kernel_launches == 1
    rec = m.counters.kernels[0]
    assert rec.name == "fused"
    assert rec.items == 3
    assert rec.cycles == pytest.approx(30.0 + m.spec.launch_overhead_cycles
                                       + calib.FRAMEWORK_DISPATCH_CYCLES)


def test_fusion_nested():
    m = Machine()
    with m.fused("outer"):
        with m.fused("inner"):
            m.launch("a", body_cycles=5.0)
        m.launch("b", body_cycles=7.0)
    assert m.counters.kernel_launches == 1
    assert m.counters.kernels[0].name == "outer"


def test_fusion_saves_cycles_vs_separate():
    fused, split = Machine(), Machine()
    with fused.fused("f"):
        for _ in range(10):
            fused.launch("k", body_cycles=1.0)
    for _ in range(10):
        split.launch("k", body_cycles=1.0)
    assert fused.counters.cycles < split.counters.cycles / 5


def test_map_kernel_scaling():
    m = Machine()
    c_small = m.launch("probe", body_cycles=0.0)
    m.reset()
    m.map_kernel("k", 10 * m.spec.lanes, 2.0)
    body = m.counters.cycles - c_small
    assert body == pytest.approx(20.0)


def test_map_kernel_empty():
    m = Machine()
    m.map_kernel("k", 0, 2.0)
    assert m.counters.kernel_launches == 1  # launch still happens


def test_uniform_cta_costs():
    m = Machine()
    costs = m.uniform_cta_costs(600, 3.0)
    # 600 items, CTA=256 -> 3 CTAs (256, 256, 88)
    assert len(costs) == 3
    assert costs[0] == pytest.approx(2 * 3.0)   # ceil(256/192) = 2 rounds
    assert costs[-1] == pytest.approx(1 * 3.0)  # 88 items: 1 round


def test_machine_reset():
    m = Machine()
    m.launch("k", body_cycles=1.0)
    m.reset()
    assert m.counters.cycles == 0.0
    assert m.counters.kernel_launches == 0


def test_elapsed_ms_monotone():
    m = Machine()
    t0 = m.elapsed_ms()
    m.launch("k", body_cycles=1e6)
    assert m.elapsed_ms() > t0


# -- counters -------------------------------------------------------------------


def test_counters_merge():
    a, b = Machine(), Machine()
    a.launch("x", body_cycles=1.0)
    b.launch("y", body_cycles=2.0)
    b.counters.record_edges(7)
    a.counters.merge(b.counters)
    assert a.counters.kernel_launches == 2
    assert a.counters.edges_visited == 7
    assert len(a.counters.kernels) == 2


def test_counters_breakdown():
    m = Machine()
    m.launch("x", body_cycles=1.0)
    m.launch("x", body_cycles=2.0)
    m.launch("y", body_cycles=3.0)
    bd = m.counters.kernel_breakdown()
    assert bd["x"][0] == 2
    assert bd["y"][0] == 1


def test_counters_as_dict():
    m = Machine()
    m.launch("x", body_cycles=1.0, items=3)
    d = m.counters.as_dict()
    assert d["kernel_launches"] == 1
    assert "kernels" not in d


# -- device primitives ---------------------------------------------------------------


def test_exclusive_scan():
    scan, total = primitives.exclusive_scan(np.array([3, 1, 4, 1, 5]))
    assert scan.tolist() == [0, 3, 4, 8, 9]
    assert total == 14


def test_exclusive_scan_empty():
    scan, total = primitives.exclusive_scan(np.zeros(0, dtype=np.int64))
    assert len(scan) == 0
    assert total == 0


def test_inclusive_scan():
    out = primitives.inclusive_scan(np.array([1, 2, 3]))
    assert out.tolist() == [1, 3, 6]


def test_scan_records_cost():
    m = Machine()
    primitives.exclusive_scan(np.arange(100), m)
    assert m.counters.scan_elements == 100
    assert m.counters.kernel_launches == 1


def test_compact():
    data = np.arange(10)
    mask = data % 2 == 0
    out = primitives.compact(data, mask)
    assert out.tolist() == [0, 2, 4, 6, 8]


def test_compact_rejects_mismatch():
    with pytest.raises(ValueError):
        primitives.compact(np.arange(3), np.array([True]))


def test_sorted_search_matches_numpy():
    hay = np.array([0, 5, 10, 15])
    needles = np.array([3, 5, 20])
    out = primitives.sorted_search(needles, hay)
    assert np.array_equal(out, np.searchsorted(hay, needles, side="right"))


def test_histogram():
    out = primitives.histogram(np.array([0, 1, 1, 3]), 5)
    assert out.tolist() == [1, 2, 0, 1, 0]


def test_segmented_reduce_sum():
    vals = np.array([1.0, 2.0, 3.0, 4.0])
    offsets = np.array([0, 2, 2, 4])  # segments: [1,2], [], [3,4]
    out = primitives.segmented_reduce_sum(vals, offsets)
    assert out.tolist() == [3.0, 0.0, 7.0]


def test_segmented_reduce_rejects_empty_offsets():
    with pytest.raises(ValueError):
        primitives.segmented_reduce_sum(np.zeros(3), np.zeros(0))


def test_segment_ids_from_offsets():
    offsets = np.array([0, 2, 2, 5])
    ids = primitives.segment_ids_from_offsets(offsets)
    assert ids.tolist() == [0, 0, 2, 2, 2]


def test_sort_pairs_stable():
    keys = np.array([2, 1, 2, 0])
    vals = np.array([10, 11, 12, 13])
    k, v = primitives.sort_pairs(keys, vals)
    assert k.tolist() == [0, 1, 2, 2]
    assert v.tolist() == [13, 11, 10, 12]


def test_unique_by_sort():
    out = primitives.unique_by_sort(np.array([3, 1, 3, 2, 1]))
    assert out.tolist() == [1, 2, 3]
