"""Property-based tests (hypothesis) on primitive invariants over random
graphs — the 'any graph, any seed' guarantees unit tests cannot give."""

import numpy as np
import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.graph import Coo, from_edges
from repro.graph.build import to_networkx
from repro import primitives as P


@st.composite
def undirected_graphs(draw, max_n=14, max_m=40):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=max_m))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=m, max_size=m))
    arr = np.asarray(edges, dtype=np.int64)
    coo = Coo(arr[:, 0], arr[:, 1], n).without_self_loops()
    if coo.m == 0:
        coo = Coo(np.array([0]), np.array([1]), n)
    return coo.symmetrized().to_csr()


@st.composite
def weighted_graphs(draw):
    g = draw(undirected_graphs())
    seed = draw(st.integers(0, 2**31))
    from repro.graph.build import with_random_weights

    return with_random_weights(g, seed=seed)


@given(undirected_graphs(), st.integers(0, 2**31))
@settings(max_examples=40, deadline=None)
def test_cc_is_a_valid_partition(g, seed):
    r = P.cc(g)
    und = nx.Graph(to_networkx(g))
    und.add_nodes_from(range(g.n))
    for comp in nx.connected_components(und):
        ids = {int(r.component_ids[v]) for v in comp}
        assert len(ids) == 1


@given(undirected_graphs(), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_coloring_always_proper(g, seed):
    r = P.color(g, seed=seed)
    src, dst = g.edge_sources, g.indices
    mask = src != dst
    assert (r.colors[src[mask]] != r.colors[dst[mask]]).all()
    assert (r.colors >= 0).all()


@given(undirected_graphs(), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_mis_always_independent_and_maximal(g, seed):
    r = P.mis(g, seed=seed)
    in_set = r.in_set
    src, dst = g.edge_sources, g.indices
    assert not (in_set[src] & in_set[dst]).any()
    for v in range(g.n):
        if not in_set[v]:
            nb = g.neighbors(v)
            assert len(nb) and in_set[nb].any()


@given(weighted_graphs())
@settings(max_examples=30, deadline=None)
def test_mst_weight_always_optimal(g):
    r = P.mst(g)
    ref = nx.minimum_spanning_tree(nx.Graph(to_networkx(g)), weight="weight")
    refw = sum(d["weight"] for _, _, d in ref.edges(data=True))
    assert r.total_weight(g) == refw


@given(weighted_graphs(), st.integers(0, 13))
@settings(max_examples=30, deadline=None)
def test_sssp_always_matches_dijkstra(g, src):
    src = src % g.n
    r = P.sssp(g, src)
    ref = nx.single_source_dijkstra_path_length(to_networkx(g), src,
                                                weight="weight")
    for v in range(g.n):
        if v in ref:
            assert r.labels[v] == ref[v]
        else:
            assert np.isinf(r.labels[v])


@given(undirected_graphs())
@settings(max_examples=30, deadline=None)
def test_kcore_always_matches_networkx(g):
    r = P.kcore(g)
    und = nx.Graph(to_networkx(g))
    und.add_nodes_from(range(g.n))
    ref = nx.core_number(und)
    for v in range(g.n):
        assert r.core_numbers[v] == ref[v]


@given(undirected_graphs())
@settings(max_examples=30, deadline=None)
def test_triangles_always_match_networkx(g):
    r = P.triangle_count(g)
    und = nx.Graph(to_networkx(g))
    assert r.total == sum(nx.triangles(und).values()) // 3


@given(undirected_graphs(), st.integers(0, 13))
@settings(max_examples=30, deadline=None)
def test_bc_sigma_counts_shortest_paths(g, src):
    src = src % g.n
    r = P.bc(g, src)
    nxg = to_networkx(g)
    # sigma[v] must equal the number of shortest src->v paths
    for v in range(g.n):
        if v == src:
            continue
        try:
            paths = list(nx.all_shortest_paths(nxg, src, v))
            assert r.sigma[v] == len(paths)
        except nx.NetworkXNoPath:
            assert r.sigma[v] == 0


@given(undirected_graphs())
@settings(max_examples=25, deadline=None)
def test_pagerank_order_independent_of_machine(g):
    from repro.simt import Machine

    a = P.pagerank(g, tolerance=1e-9).rank
    b = P.pagerank(g, tolerance=1e-9, machine=Machine()).rank
    assert np.array_equal(a, b)


@given(undirected_graphs(), st.integers(0, 13), st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_multi_gpu_bfs_always_matches(g, src, k):
    from repro.multi import multi_gpu_bfs

    src = src % g.n
    ref = P.bfs(g, src).labels
    r = multi_gpu_bfs(g, src, k=k)
    assert np.array_equal(r.labels, ref)
