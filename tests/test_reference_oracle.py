"""Cross-validation against the dependency-free textbook oracle
(:mod:`repro.reference`) — a second, independent correctness anchor
alongside the NetworkX comparisons."""

import numpy as np
import pytest

from repro import reference
from repro.graph import generators, with_random_weights
from repro import primitives as P


@pytest.fixture(scope="module")
def g():
    return generators.kronecker(8, seed=13)


@pytest.fixture(scope="module")
def gw(g):
    return with_random_weights(g, seed=17)


@pytest.fixture(scope="module")
def road():
    return generators.road_grid(14, 10, seed=2)


def test_bfs_vs_oracle(g, road):
    for graph in (g, road):
        src = int(graph.out_degrees.argmax())
        ours = P.bfs(graph, src).labels
        ref = reference.bfs_depths(graph, src)
        assert ours.tolist() == ref


def test_sssp_vs_oracle(gw):
    src = int(gw.out_degrees.argmax())
    ours = P.sssp(gw, src).labels
    ref = reference.dijkstra(gw, src)
    assert np.allclose(ours, ref, equal_nan=True)


def test_bc_vs_oracle(g):
    src = int(g.out_degrees.argmax())
    r = P.bc(g, src)
    sigma, delta = reference.brandes_single_source(g, src)
    assert np.allclose(r.sigma, sigma)
    assert np.allclose(r.bc_values, delta)


def test_pagerank_vs_oracle(g):
    ours = P.pagerank(g, tolerance=1e-12).rank
    ref = reference.pagerank_power(g, iterations=400)
    assert np.allclose(ours, ref, atol=1e-8)


def test_cc_vs_oracle(g, road):
    for graph in (g, road):
        ours = P.cc(graph).component_ids
        ref = reference.connected_components(graph)
        assert ours.tolist() == ref  # both label by component minimum


def test_triangles_vs_oracle(g):
    assert P.triangle_count(g).total == reference.triangle_count(g)


def test_kcore_vs_oracle(g):
    ours = P.kcore(g).core_numbers
    assert ours.tolist() == reference.core_numbers(g)


def test_mst_vs_oracle(gw, road):
    road_w = with_random_weights(road, seed=5)
    for graph in (gw, road_w):
        ours = P.mst(graph).total_weight(graph)
        assert ours == pytest.approx(reference.minimum_spanning_weight(graph))


def test_oracle_agrees_with_networkx(g):
    """The oracle itself must agree with NetworkX — closing the triangle
    of independent implementations."""
    import networkx as nx
    from repro.graph.build import to_networkx

    src = int(g.out_degrees.argmax())
    nx_depths = nx.single_source_shortest_path_length(to_networkx(g), src)
    ref = reference.bfs_depths(g, src)
    for v in range(g.n):
        assert ref[v] == nx_depths.get(v, -1)

    und = nx.Graph(to_networkx(g))
    assert reference.triangle_count(g) == \
        sum(nx.triangles(und).values()) // 3
