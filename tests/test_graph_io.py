"""Graph file I/O round trips (edge list, MatrixMarket, DIMACS)."""

import numpy as np
import pytest

from repro.graph import generators, io, with_random_weights


@pytest.fixture()
def g():
    return generators.kronecker(7, seed=1)


@pytest.fixture()
def gw(g):
    return with_random_weights(g, seed=2)


def test_edgelist_roundtrip(tmp_path, g):
    p = tmp_path / "g.txt"
    io.write_edgelist(g, p)
    back = io.read_edgelist(p, n=g.n)
    assert back == g


def test_edgelist_weighted_roundtrip(tmp_path, gw):
    p = tmp_path / "g.txt"
    io.write_edgelist(gw, p)
    back = io.read_edgelist(p, n=gw.n)
    assert back == gw


def test_edgelist_skips_comments(tmp_path):
    p = tmp_path / "g.txt"
    p.write_text("# comment\n% other comment\n0 1\n\n1 2\n")
    g = io.read_edgelist(p)
    assert g.n == 3
    assert g.m == 2


def test_edgelist_rejects_malformed(tmp_path):
    p = tmp_path / "g.txt"
    p.write_text("0\n")
    with pytest.raises(ValueError):
        io.read_edgelist(p)


def test_edgelist_rejects_mixed_weights(tmp_path):
    p = tmp_path / "g.txt"
    p.write_text("0 1 2.5\n1 2\n")
    with pytest.raises(ValueError):
        io.read_edgelist(p)


def test_edgelist_undirected_flag(tmp_path):
    p = tmp_path / "g.txt"
    p.write_text("0 1\n")
    g = io.read_edgelist(p, undirected=True)
    assert g.m == 2


def test_matrix_market_roundtrip(tmp_path, g):
    p = tmp_path / "g.mtx"
    io.write_matrix_market(g, p)
    back = io.read_matrix_market(p)
    assert back == g


def test_matrix_market_weighted_roundtrip(tmp_path, gw):
    p = tmp_path / "g.mtx"
    io.write_matrix_market(gw, p)
    back = io.read_matrix_market(p)
    assert back == gw


def test_matrix_market_symmetric_header(tmp_path):
    p = tmp_path / "g.mtx"
    p.write_text("%%MatrixMarket matrix coordinate pattern symmetric\n"
                 "3 3 1\n1 2\n")
    g = io.read_matrix_market(p)
    assert g.m == 2  # symmetrized per the header


def test_matrix_market_rejects_non_mm(tmp_path):
    p = tmp_path / "g.mtx"
    p.write_text("hello\n")
    with pytest.raises(ValueError):
        io.read_matrix_market(p)


def test_matrix_market_rejects_rectangular(tmp_path):
    p = tmp_path / "g.mtx"
    p.write_text("%%MatrixMarket matrix coordinate pattern general\n3 4 0\n")
    with pytest.raises(ValueError):
        io.read_matrix_market(p)


def test_dimacs_roundtrip(tmp_path, gw):
    p = tmp_path / "g.gr"
    io.write_dimacs(gw, p)
    back = io.read_dimacs(p)
    assert back == gw


def test_dimacs_unweighted_writes_ones(tmp_path, g):
    p = tmp_path / "g.gr"
    io.write_dimacs(g, p)
    back = io.read_dimacs(p)
    assert np.all(back.edge_values == 1.0)
    assert back.m == g.m


def test_dimacs_rejects_garbage(tmp_path):
    p = tmp_path / "g.gr"
    p.write_text("p sp 2 1\nx 1 2 3\n")
    with pytest.raises(ValueError):
        io.read_dimacs(p)


def test_networkx_roundtrip(g):
    from repro.graph.build import from_networkx, to_networkx

    nxg = to_networkx(g, directed=True)
    back = from_networkx(nxg)
    assert back == g


def test_scipy_roundtrip(gw):
    from repro.graph.build import from_scipy, to_scipy

    back = from_scipy(to_scipy(gw))
    assert back == gw


def test_npz_roundtrip(tmp_path, g):
    p = tmp_path / "g.npz"
    io.write_npz(g, p)
    assert io.read_npz(p) == g


def test_npz_weighted_roundtrip(tmp_path, gw):
    p = tmp_path / "g.npz"
    io.write_npz(gw, p)
    back = io.read_npz(p)
    assert back == gw
    assert back.edge_values is not None


def test_npz_cli_roundtrip(tmp_path, capsys):
    from repro.cli import main

    p = str(tmp_path / "g.npz")
    assert main(["generate", "--generate", "kron:7", "--output", p]) == 0
    assert main(["info", p]) == 0
    assert "vertices" in capsys.readouterr().out


# -- error context (GraphIOError names file and line) -------------------------------------


def test_graph_io_error_is_value_error():
    assert issubclass(io.GraphIOError, ValueError)


def test_edgelist_error_names_file_and_line(tmp_path):
    p = tmp_path / "bad.txt"
    p.write_text("0 1\n2 3\noops\n")
    with pytest.raises(io.GraphIOError) as err:
        io.read_edgelist(p)
    assert str(p) in str(err.value)
    assert ":3:" in str(err.value)
    assert err.value.line == 3


def test_edgelist_non_numeric_entry(tmp_path):
    p = tmp_path / "bad.txt"
    p.write_text("0 one\n")
    with pytest.raises(io.GraphIOError, match="non-numeric"):
        io.read_edgelist(p)


def test_matrix_market_truncated_file(tmp_path):
    p = tmp_path / "trunc.mtx"
    p.write_text("%%MatrixMarket matrix coordinate pattern general\n"
                 "4 4 3\n1 2\n")
    with pytest.raises(io.GraphIOError, match="end of file"):
        io.read_matrix_market(p)


def test_matrix_market_bad_size_line(tmp_path):
    p = tmp_path / "bad.mtx"
    p.write_text("%%MatrixMarket matrix coordinate pattern general\nx y z\n")
    with pytest.raises(io.GraphIOError) as err:
        io.read_matrix_market(p)
    assert err.value.line == 2


def test_dimacs_error_names_line(tmp_path):
    p = tmp_path / "bad.gr"
    p.write_text("p sp 3 1\na 1 2 nonsense-weight\n")
    with pytest.raises(io.GraphIOError) as err:
        io.read_dimacs(p)
    assert err.value.line == 2


def test_missing_file_raises_graph_io_error(tmp_path):
    with pytest.raises(io.GraphIOError):
        io.read_edgelist(tmp_path / "nope.txt")


def test_npz_not_a_snapshot(tmp_path):
    import numpy as _np

    p = tmp_path / "other.npz"
    _np.savez(p, foo=_np.zeros(3))
    with pytest.raises(io.GraphIOError, match="snapshot"):
        io.read_npz(p)


def test_cli_exits_2_on_bad_graph(tmp_path, capsys):
    from repro.cli import main

    p = tmp_path / "bad.mtx"
    p.write_text("not a matrix\n")
    assert main(["info", str(p)]) == 2
    assert "bad.mtx:1" in capsys.readouterr().err
