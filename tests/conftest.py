"""Shared fixtures: small deterministic graphs of every topology class."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import from_edges, generators, with_random_weights


@pytest.fixture(scope="session")
def tiny_graph():
    """A hand-checkable 6-vertex undirected graph.

        0 - 1 - 2
        |   |
        3 - 4   5 (isolated)
    """
    return from_edges([(0, 1), (1, 2), (0, 3), (1, 4), (3, 4)], n=6,
                      undirected=True)


@pytest.fixture(scope="session")
def kron_graph():
    """Small scale-free R-MAT graph (the irregular-workload case)."""
    return generators.kronecker(9, seed=3)


@pytest.fixture(scope="session")
def kron_weighted(kron_graph):
    return with_random_weights(kron_graph, seed=5)


@pytest.fixture(scope="session")
def road_graph():
    """Small road grid (the large-diameter, even-degree case)."""
    return generators.road_grid(24, 18, seed=2)


@pytest.fixture(scope="session")
def road_weighted(road_graph):
    return with_random_weights(road_graph, seed=7)


@pytest.fixture(scope="session")
def hub_graph():
    """Small bitcoin-like hub graph (the extreme-skew case)."""
    return generators.hub_graph(2000, seed=4)


@pytest.fixture(scope="session")
def star_graph():
    return generators.star(64)


@pytest.fixture(scope="session")
def path_graph():
    return generators.path(50)


def nx_of(g, directed=True):
    from repro.graph.build import to_networkx

    return to_networkx(g, directed=directed)
