"""CSR/COO container tests: invariants, conversions, derived views."""

import numpy as np
import pytest

from repro.graph import Coo, Csr, csr_to_coo, from_edges
from repro.graph.build import with_random_weights


def test_from_edges_basic():
    g = from_edges([(0, 1), (0, 2), (1, 2)], n=3)
    assert g.n == 3
    assert g.m == 3
    assert list(g.neighbors(0)) == [1, 2]
    assert list(g.neighbors(1)) == [2]
    assert list(g.neighbors(2)) == []


def test_from_edges_infers_n():
    g = from_edges([(0, 5)])
    assert g.n == 6


def test_from_edges_empty():
    g = from_edges([], n=4)
    assert g.n == 4
    assert g.m == 0
    assert g.out_degrees.tolist() == [0, 0, 0, 0]


def test_from_edges_undirected_symmetrizes():
    g = from_edges([(0, 1)], n=2, undirected=True)
    assert g.m == 2
    assert list(g.neighbors(1)) == [0]


def test_from_edges_rejects_bad_shape():
    with pytest.raises(ValueError):
        from_edges(np.zeros((3, 3)))


def test_out_degrees(tiny_graph):
    deg = tiny_graph.out_degrees
    assert deg.sum() == tiny_graph.m
    assert deg[5] == 0  # isolated vertex
    assert deg[1] == 3  # neighbors 0, 2, 4


def test_degrees_of_matches_out_degrees(kron_graph):
    v = np.arange(kron_graph.n)
    assert np.array_equal(kron_graph.degrees_of(v), kron_graph.out_degrees)


def test_validate_rejects_bad_indptr():
    with pytest.raises(ValueError):
        Csr(np.array([0, 2, 1]), np.array([0, 1], dtype=np.int32))


def test_validate_rejects_indptr_head():
    with pytest.raises(ValueError):
        Csr(np.array([1, 2]), np.array([0], dtype=np.int32))


def test_validate_rejects_out_of_range_indices():
    with pytest.raises(ValueError):
        Csr(np.array([0, 1]), np.array([5], dtype=np.int32))


def test_validate_rejects_mismatched_tail():
    with pytest.raises(ValueError):
        Csr(np.array([0, 3]), np.array([0], dtype=np.int32))


def test_validate_rejects_weight_length():
    with pytest.raises(ValueError):
        Csr(np.array([0, 1]), np.array([0], dtype=np.int32),
            edge_values=np.array([1.0, 2.0]))


def test_edge_sources(tiny_graph):
    src = tiny_graph.edge_sources
    assert len(src) == tiny_graph.m
    for v in range(tiny_graph.n):
        lo, hi = tiny_graph.indptr[v], tiny_graph.indptr[v + 1]
        assert np.all(src[lo:hi] == v)


def test_reverse_roundtrip(kron_graph):
    rev = kron_graph.reverse()
    back = rev.reverse()
    assert back == kron_graph


def test_reverse_preserves_edge_count(kron_graph):
    assert kron_graph.reverse().m == kron_graph.m


def test_reverse_orig_edge_mapping(tiny_graph):
    rev = tiny_graph.reverse()
    orig = rev.edge_props["orig_edge"]
    fwd_src = tiny_graph.edge_sources
    for rid in range(rev.m):
        # reverse edge rid is (u -> v); its original edge is (v -> u)
        u = rev.edge_sources[rid]
        v = rev.indices[rid]
        oid = orig[rid]
        assert fwd_src[oid] == v
        assert tiny_graph.indices[oid] == u


def test_csc_cached_and_symmetric_on_undirected(tiny_graph):
    csc = tiny_graph.csc
    assert csc is tiny_graph.csc  # cached
    # symmetrized graph: in-degrees equal out-degrees
    assert np.array_equal(tiny_graph.in_degrees, tiny_graph.out_degrees)


def test_weight_or_ones_default(tiny_graph):
    w = tiny_graph.weight_or_ones()
    assert np.all(w == 1.0)
    assert len(w) == tiny_graph.m


def test_with_edge_values(tiny_graph):
    vals = np.arange(tiny_graph.m, dtype=np.float64)
    g2 = tiny_graph.with_edge_values(vals)
    assert np.array_equal(g2.edge_values, vals)
    assert g2.m == tiny_graph.m
    with pytest.raises(ValueError):
        tiny_graph.with_edge_values(np.zeros(3))


def test_random_weights_symmetric(kron_graph):
    gw = with_random_weights(kron_graph, seed=9)
    # the weight of (u, v) equals the weight of (v, u)
    src = gw.edge_sources
    lookup = {}
    for i in range(gw.m):
        lookup[(int(src[i]), int(gw.indices[i]))] = float(gw.edge_values[i])
    for (u, v), w in list(lookup.items())[:500]:
        assert lookup[(v, u)] == w


def test_random_weights_range(kron_graph):
    gw = with_random_weights(kron_graph, low=1, high=64, seed=9)
    assert gw.edge_values.min() >= 1
    assert gw.edge_values.max() <= 64


def test_nbytes_counts_topology(tiny_graph):
    base = tiny_graph.nbytes()
    assert base == tiny_graph.indptr.nbytes + tiny_graph.indices.nbytes


# -- COO ------------------------------------------------------------------------


def test_coo_roundtrip(kron_graph):
    coo = csr_to_coo(kron_graph)
    back = coo.to_csr()
    assert back == kron_graph


def test_coo_rejects_length_mismatch():
    with pytest.raises(ValueError):
        Coo(np.array([0]), np.array([1, 2]), 3)


def test_coo_rejects_out_of_range():
    with pytest.raises(ValueError):
        Coo(np.array([0]), np.array([5]), 3)


def test_coo_without_self_loops():
    coo = Coo(np.array([0, 1, 2]), np.array([0, 2, 2]), 3)
    clean = coo.without_self_loops()
    assert clean.m == 1
    assert clean.src.tolist() == [1]


def test_coo_deduplicated_keeps_first_values():
    coo = Coo(np.array([0, 0, 1]), np.array([1, 1, 2]), 3,
              values=np.array([10.0, 20.0, 30.0]))
    d = coo.deduplicated()
    assert d.m == 2
    assert d.values.tolist() == [10.0, 30.0]


def test_coo_symmetrized():
    coo = Coo(np.array([0]), np.array([1]), 2).symmetrized()
    assert coo.m == 2
    pairs = set(zip(coo.src.tolist(), coo.dst.tolist()))
    assert pairs == {(0, 1), (1, 0)}


def test_to_csr_sorted_neighbors():
    coo = Coo(np.array([0, 0, 0]), np.array([3, 1, 2]), 4)
    g = coo.to_csr()
    assert list(g.neighbors(0)) == [1, 2, 3]


# -- topology dtype invariant + artifact cache -------------------------------------------


def test_topology_int64_at_construction():
    """Topology arrays are int64 from the moment the Csr is built, so the
    operator layer never pays an ``astype`` widening copy per call."""
    g = from_edges([(0, 1), (0, 2), (1, 2)], n=3)
    assert g.indptr.dtype == np.int64
    assert g.indices.dtype == np.int64


def test_degrees_of_int64_no_copy_semantics():
    g = from_edges([(0, 1), (0, 2), (1, 2), (2, 0)], n=3)
    d = g.degrees_of(np.array([0, 1, 2], dtype=np.int64))
    assert d.dtype == np.int64
    assert d.tolist() == [2, 1, 1]


def test_derived_views_int64():
    g = from_edges([(0, 1), (1, 2)], n=3, undirected=True)
    assert g.csc.indices.dtype == np.int64
    assert g.csc.indptr.dtype == np.int64


def test_artifact_cache_memoizes_and_freezes():
    g = from_edges([(0, 1), (0, 2), (1, 2)], n=3)
    art = g.artifacts
    assert art.out_degrees is g.artifacts.out_degrees  # memoized
    assert not art.out_degrees.flags.writeable
    assert not art.iota_n.flags.writeable
    assert np.array_equal(art.iota_n, np.arange(3))
    assert np.array_equal(art.iota_m, np.arange(3))
    assert np.array_equal(art.out_degrees, [2, 1, 0])


def test_artifact_edge_sources_matches_expansion():
    g = from_edges([(0, 1), (0, 2), (1, 2)], n=3)
    art = g.artifacts
    assert np.array_equal(art.edge_sources,
                          np.repeat(np.arange(3), np.diff(g.indptr)))


def test_artifact_weights64_matches_weight_or_ones():
    g = with_random_weights(from_edges([(0, 1), (1, 2)], n=3), seed=7)
    art = g.artifacts
    assert art.weights64.dtype == np.float64
    assert not art.weights64.flags.writeable
    assert np.array_equal(art.weights64, g.weight_or_ones())
