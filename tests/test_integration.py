"""Cross-module integration tests: full primitive runs on every dataset
twin, machine-spec sensitivity, determinism sweeps, and the library's
public API surface."""

import numpy as np
import pytest

import repro
from repro.graph import datasets, with_random_weights
from repro.primitives import bfs, sssp, bc, pagerank, cc
from repro.simt import GPUSpec, Machine


@pytest.fixture(scope="module")
def twins():
    return {name: datasets.load(name, scale=1 / 1024, seed=3)
            for name in datasets.TABLE_ORDER}


@pytest.mark.parametrize("name", datasets.TABLE_ORDER)
def test_all_primitives_on_every_twin(twins, name):
    """The full Section 5 suite must run end-to-end on every topology
    class, with consistent outputs."""
    g = twins[name]
    src = int(g.out_degrees.argmax())
    m = Machine()

    r_bfs = bfs(g, src, machine=m)
    reached = r_bfs.labels >= 0
    assert reached[src]

    gw = with_random_weights(g, seed=4)
    r_sssp = sssp(gw, src)
    # SSSP reaches exactly the BFS-reachable set
    assert np.array_equal(np.isfinite(r_sssp.labels), reached)
    # and hop-count lower-bounds weighted distance (weights >= 1)
    ok = reached & (r_bfs.labels >= 0)
    assert np.all(r_sssp.labels[ok] >= r_bfs.labels[ok])

    r_bc = bc(g, src)
    assert np.all(r_bc.bc_values >= 0)
    # only reachable vertices accumulate dependency
    assert np.all(r_bc.bc_values[~reached] == 0)

    r_pr = pagerank(g)
    assert np.all(r_pr.rank > 0)

    r_cc = cc(g)
    # BFS-reachable vertices share the source's component
    assert len(np.unique(r_cc.component_ids[reached])) == 1


def test_faster_gpu_spec_runs_faster(twins):
    """A spec with more SMs must yield lower simulated time."""
    g = twins["soc"]
    src = int(g.out_degrees.argmax())
    slow = Machine(spec=GPUSpec(num_sm=4))
    fast = Machine(spec=GPUSpec(num_sm=32))
    bfs(g, src, machine=slow)
    bfs(g, src, machine=fast)
    assert fast.elapsed_ms() < slow.elapsed_ms()


def test_machine_independent_results(twins):
    """The machine is cost-only: outputs are identical with and without."""
    g = twins["kron"]
    src = int(g.out_degrees.argmax())
    a = bfs(g, src, machine=Machine()).labels
    b = bfs(g, src, machine=None).labels
    assert np.array_equal(a, b)


def test_public_api_surface():
    for name in ("Csr", "from_edges", "Machine", "GPUSpec", "Frontier",
                 "Functor", "ProblemBase", "EnactorBase",
                 "bfs", "sssp", "bc", "pagerank", "cc"):
        assert hasattr(repro, name), name
    assert repro.__version__


def test_library_determinism_end_to_end(twins):
    """Two identical full runs must agree bit-for-bit, machine included."""
    g = twins["bitcoin"]
    src = int(g.out_degrees.argmax())

    def run():
        m = Machine()
        r = bfs(g, src, machine=m)
        return r.labels.copy(), m.counters.cycles, m.counters.kernel_launches

    l1, c1, k1 = run()
    l2, c2, k2 = run()
    assert np.array_equal(l1, l2)
    assert c1 == c2
    assert k1 == k2


def test_counters_consistency(twins):
    """Kernel records must sum to the counter totals."""
    g = twins["kron"]
    m = Machine()
    bfs(g, int(g.out_degrees.argmax()), machine=m)
    assert sum(k.cycles for k in m.counters.kernels) == pytest.approx(
        m.counters.cycles)
    assert len(m.counters.kernels) == m.counters.kernel_launches


def test_sssp_tree_is_shortest_path_tree(twins):
    """End-to-end invariant: walking preds from any reached vertex yields
    a path whose weight equals the reported distance."""
    g = with_random_weights(twins["roadnet"], seed=9)
    src = int(g.out_degrees.argmax())
    r = sssp(g, src)
    w = g.weight_or_ones()
    rng = np.random.default_rng(0)
    reached = np.flatnonzero(np.isfinite(r.labels))
    for v in rng.choice(reached, size=min(25, len(reached)), replace=False):
        v = int(v)
        total, cur, hops = 0.0, v, 0
        while cur != src and hops <= g.n:
            p = int(r.preds[cur])
            nbrs = g.neighbors(p)
            eid = int(g.indptr[p]) + int(np.flatnonzero(nbrs == cur)[0])
            total += w[eid]
            cur = p
            hops += 1
        assert cur == src
        assert total == pytest.approx(r.labels[v])


def test_bc_total_dependency_conservation(twins):
    """Sum of single-source dependencies equals the number of ordered
    reachable pairs' path containments: sum(delta) = sum over w of
    (number of vertices on s-w shortest paths, excluding endpoints)
    — checked indirectly: every vertex's score is bounded by the number
    of reachable vertices."""
    g = twins["kron"]
    src = int(g.out_degrees.argmax())
    r = bc(g, src)
    reachable = (r.labels >= 0).sum()
    assert r.bc_values.max() <= reachable ** 2
