"""Property test: BFS direction strategies agree on depth arrays.

Direction-optimized BFS (Beamer's push/pull switch, Section 5.1) must be
an *optimization*, never a semantic change: for any graph and source,
``push``, ``pull``, and ``auto`` produce identical depth arrays — with
workspace pooling on or off, idempotent or not.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.workspace import pooling
from repro.graph import from_edges
from repro.primitives import bfs
from repro.reference import bfs_depths

DIRECTIONS = ("push", "pull", "auto")


@st.composite
def graphs_and_src(draw, max_n=28, max_m=110):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=m, max_size=m))
    src = draw(st.integers(0, n - 1))
    return n, edges, src


def _build(n, edges):
    return from_edges(edges, n=n, undirected=True) if edges \
        else from_edges([], n=n)


@given(graphs_and_src(), st.booleans(), st.booleans())
@settings(max_examples=60, deadline=None)
def test_push_pull_auto_identical_depths(data, idempotent, pooled):
    n, edges, src = data
    g = _build(n, edges)
    with pooling(pooled):
        depths = {d: bfs(g, src, direction=d, idempotent=idempotent).labels
                  for d in DIRECTIONS}
    assert np.array_equal(depths["push"], depths["pull"])
    assert np.array_equal(depths["push"], depths["auto"])
    # and all three match the serial oracle
    assert depths["push"].tolist() == bfs_depths(g, src)


@given(graphs_and_src())
@settings(max_examples=40, deadline=None)
def test_direction_identical_predecessors_are_valid(data):
    """Whatever direction ran, every recorded predecessor must be an
    actual in-neighbor one level shallower."""
    n, edges, src = data
    g = _build(n, edges)
    for direction in DIRECTIONS:
        r = bfs(g, src, direction=direction)
        labels, preds = r.labels, r.preds
        for v in range(n):
            if v == src or labels[v] < 0:
                continue
            p = int(preds[v])
            assert labels[p] == labels[v] - 1
            assert v in g.neighbors(p)


@given(graphs_and_src(max_n=20, max_m=70))
@settings(max_examples=30, deadline=None)
def test_pooled_unpooled_identical_per_direction(data):
    """Pooling is invisible per direction: same labels AND same simulated
    cycle totals."""
    from repro.simt import Machine

    n, edges, src = data
    g = _build(n, edges)
    for direction in DIRECTIONS:
        out = {}
        for mode in (True, False):
            with pooling(mode):
                m = Machine()
                out[mode] = (bfs(g, src, machine=m, direction=direction),
                             m.counters.cycles)
        assert np.array_equal(out[True][0].labels, out[False][0].labels)
        assert out[True][1] == out[False][1]
