"""Unit tests for the two-level near/far priority queue (Section 4.1.1).

Invariants pinned here:

* a split never places an element in both piles (near/far partition);
* draining a pile yields non-decreasing priority levels;
* empty piles behave (empty push is a no-op, pop on empty is empty);
* snapshot/restore round-trips the mutable state;
* a mis-sized priority function is a loud error;
* splits with a machine charge exactly one kernel.
"""

import numpy as np
import pytest

from repro.core import Frontier, ProblemBase
from repro.core.frontier import FrontierKind
from repro.core.operators.priority_queue import NearFarPile, split_near_far
from repro.graph import from_edges
from repro.simt import Machine


def _problem(n=64, machine=None):
    g = from_edges([(0, 1)], n=n, undirected=True)
    p = ProblemBase(g, machine)
    return p


def _identity_priority(problem, items):
    return items.astype(np.float64)


def test_split_is_a_partition():
    p = _problem()
    items = np.array([5, 12, 3, 40, 12, 7], dtype=np.int64)
    near, far = split_near_far(p, Frontier(items), _identity_priority, 10.0)
    merged = np.concatenate([near.items, far.items])
    assert sorted(merged.tolist()) == sorted(items.tolist())
    assert not set(near.items.tolist()) & set(far.items.tolist())
    assert near.items.max() < 10
    assert far.items.min() >= 10


def test_split_empty_frontier_returns_two_distinct_empties():
    p = _problem()
    near, far = split_near_far(p, Frontier.empty(FrontierKind.VERTEX),
                               _identity_priority, 1.0)
    assert near.is_empty and far.is_empty
    assert near is not far  # callers mutate them independently


def test_split_mismatched_priority_length_raises():
    p = _problem()

    def bad(problem, items):
        return np.zeros(len(items) - 1)

    with pytest.raises(ValueError, match="one value per item"):
        split_near_far(p, Frontier(np.array([1, 2, 3])), bad, 1.0)


def test_pile_rejects_nonpositive_delta():
    p = _problem()
    with pytest.raises(ValueError, match="delta"):
        NearFarPile(p, _identity_priority, 0.0)
    with pytest.raises(ValueError, match="delta"):
        NearFarPile(p, _identity_priority, -2.0)


def test_no_element_in_both_piles_after_push():
    p = _problem()
    pile = NearFarPile(p, _identity_priority, delta=8.0)
    pile.push(Frontier(np.array([1, 9, 17, 33, 7], dtype=np.int64)))
    state = pile.snapshot()
    assert not set(state["near"].tolist()) & set(state["far"].tolist())
    assert sorted(state["near"].tolist() + state["far"].tolist()) == \
        [1, 7, 9, 17, 33]


def test_drain_levels_non_decreasing_and_exhaustive():
    p = _problem()
    pile = NearFarPile(p, _identity_priority, delta=10.0)
    items = np.array([55, 3, 27, 14, 9, 41, 60, 22], dtype=np.int64)
    pile.push(Frontier(items))
    seen = []
    prev_level = pile.level
    while not pile.exhausted:
        chunk = pile.pop_near()
        assert pile.level >= prev_level  # levels only advance
        prev_level = pile.level
        # every popped element sits below the level that admitted it
        assert np.all(chunk.items.astype(np.float64) < pile.split_value)
        seen.extend(chunk.items.tolist())
    assert sorted(seen) == sorted(items.tolist())
    assert pile.exhausted
    assert pile.pop_near().is_empty  # popping an exhausted pile is safe


def test_push_empty_frontier_is_noop():
    p = _problem()
    pile = NearFarPile(p, _identity_priority, delta=1.0)
    pile.push(Frontier.empty(FrontierKind.VERTEX))
    assert pile.exhausted
    assert pile.level == 1


def test_far_elements_resplit_on_level_advance():
    """Deferred elements whose priority *improved* while far must land
    near once the level catches up — the delta-stepping relax case."""
    p = _problem()
    p.add_vertex_array("prio", np.float64, 0.0)
    p.prio[:] = np.arange(64, dtype=np.float64)
    pile = NearFarPile(p, lambda pb, v: pb.prio[v], delta=10.0)
    pile.push(Frontier(np.array([5, 25], dtype=np.int64)))
    assert pile.pop_near().items.tolist() == [5]
    p.prio[25] = 1.0  # relaxed while sitting in the far pile
    out = pile.pop_near()
    assert out.items.tolist() == [25]
    assert pile.exhausted


def test_snapshot_restore_roundtrip():
    p = _problem()
    pile = NearFarPile(p, _identity_priority, delta=10.0)
    pile.push(Frontier(np.array([2, 15, 31], dtype=np.int64)))
    state = pile.snapshot()
    # snapshot is a deep copy: draining the pile must not mutate it
    while not pile.exhausted:
        pile.pop_near()
    assert pile.exhausted
    pile.restore(state)
    assert not pile.exhausted
    assert pile.level == state["level"]
    drained = []
    while not pile.exhausted:
        drained.extend(pile.pop_near().items.tolist())
    assert sorted(drained) == [2, 15, 31]


def test_split_charges_one_kernel_with_machine():
    m = Machine()
    p = _problem(machine=m)
    before = m.counters.kernel_launches
    split_near_far(p, Frontier(np.array([1, 2, 30])), _identity_priority,
                   10.0, iteration=3)
    assert m.counters.kernel_launches == before + 1
    assert m.counters.kernels[-1].name == "near_far_split"
    assert m.counters.kernels[-1].iteration == 3
