"""BSP atomics: semantics, determinism, conflict accounting."""

import numpy as np
import pytest

from repro.core import atomics
from repro.simt import Machine


def test_atomic_min_basic():
    arr = np.array([10.0, 10.0, 10.0])
    won = atomics.atomic_min(arr, np.array([0, 1]), np.array([5.0, 20.0]))
    assert won.tolist() == [True, False]
    assert arr.tolist() == [5.0, 10.0, 10.0]


def test_atomic_min_conflicts_all_report_pre_state():
    """Every lane that improves on the PRE-kernel value reports a win —
    the BSP semantics Gunrock's SSSP relies on (filter dedups later)."""
    arr = np.array([100.0])
    won = atomics.atomic_min(arr, np.array([0, 0, 0]),
                             np.array([7.0, 3.0, 9.0]))
    assert won.tolist() == [True, True, True]
    assert arr[0] == 3.0


def test_atomic_min_equal_is_not_win():
    arr = np.array([5.0])
    won = atomics.atomic_min(arr, np.array([0]), np.array([5.0]))
    assert won.tolist() == [False]


def test_atomic_min_length_mismatch():
    with pytest.raises(ValueError):
        atomics.atomic_min(np.zeros(3), np.array([0]), np.array([1.0, 2.0]))


def test_atomic_max():
    arr = np.array([1.0, 5.0])
    won = atomics.atomic_max(arr, np.array([0, 1]), np.array([3.0, 2.0]))
    assert won.tolist() == [True, False]
    assert arr.tolist() == [3.0, 5.0]


def test_atomic_add_accumulates_duplicates():
    arr = np.zeros(3)
    atomics.atomic_add(arr, np.array([0, 0, 2]), np.array([1.0, 2.0, 4.0]))
    assert arr.tolist() == [3.0, 0.0, 4.0]


def test_atomic_add_length_mismatch():
    with pytest.raises(ValueError):
        atomics.atomic_add(np.zeros(3), np.array([0, 1]), np.array([1.0]))


def test_atomic_cas_claim_unique_winner():
    flags = np.zeros(4, dtype=bool)
    won = atomics.atomic_cas_claim(flags, np.array([2, 2, 2, 1]))
    assert won.sum() == 2            # one winner per distinct cell
    assert won.tolist() == [True, False, False, True]  # first lane wins
    assert flags.tolist() == [False, True, True, False]


def test_atomic_cas_claim_respects_prior_claims():
    flags = np.array([True, False])
    won = atomics.atomic_cas_claim(flags, np.array([0, 1]))
    assert won.tolist() == [False, True]


def test_atomic_cas_empty():
    flags = np.zeros(2, dtype=bool)
    won = atomics.atomic_cas_claim(flags, np.zeros(0, dtype=np.int64))
    assert len(won) == 0


def test_atomic_exch_last_wins():
    arr = np.array([0.0, 0.0])
    old = atomics.atomic_exch_gather(arr, np.array([0, 0]), np.array([1.0, 2.0]))
    assert arr[0] == 2.0
    assert old.tolist() == [0.0, 0.0]


def test_conflict_stats():
    assert atomics.conflict_stats(np.array([1, 1, 2])) == (3, 1)
    assert atomics.conflict_stats(np.zeros(0)) == (0, 0)


def test_atomics_charge_machine():
    m = Machine()
    arr = np.zeros(4)
    atomics.atomic_add(arr, np.array([0, 0, 1]), np.ones(3), m)
    assert m.counters.atomics_issued == 3
    assert m.counters.atomic_conflicts == 1
    assert m.counters.cycles > 0


def test_atomics_charge_counts_all_colliding_lanes():
    """Regression: conflicts = lanes beyond the first per cell, summed over
    every contended cell — idx [7, 7, 9, 12] has exactly one extra lane."""
    m = Machine()
    arr = np.zeros(16)
    atomics.atomic_add(arr, np.array([7, 7, 9, 12]), np.ones(4), m)
    assert m.counters.atomics_issued == 4
    assert m.counters.atomic_conflicts == 1


def test_atomics_charge_multiple_hot_cells():
    """Three lanes on cell 2 and two on cell 5: 3-1 + 2-1 = 3 conflicts."""
    m = Machine()
    arr = np.zeros(8)
    atomics.atomic_add(arr, np.array([2, 5, 2, 2, 5, 0]), np.ones(6), m)
    assert m.counters.atomics_issued == 6
    assert m.counters.atomic_conflicts == 3


def test_atomics_charge_sparse_addresses():
    """Widely separated addresses must not inflate the conflict count
    (the bincount-era implementation scanned the whole address range)."""
    m = Machine()
    arr = np.zeros(1_000_000)
    atomics.atomic_add(arr, np.array([0, 999_999]), np.ones(2), m)
    assert m.counters.atomics_issued == 2
    assert m.counters.atomic_conflicts == 0


def test_atomics_fold_into_fusion_scope():
    m = Machine()
    with m.fused("outer"):
        atomics.atomic_add(np.zeros(2), np.array([0]), np.ones(1), m)
    assert m.counters.kernel_launches == 1
    assert m.counters.kernels[0].name == "outer"


def test_atomic_min_determinism_any_order():
    """Result must be order-independent (min is commutative)."""
    idx = np.array([0, 1, 0, 1, 0])
    vals = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
    a = np.full(2, 10.0)
    atomics.atomic_min(a, idx, vals)
    b = np.full(2, 10.0)
    perm = np.array([4, 2, 0, 3, 1])
    atomics.atomic_min(b, idx[perm], vals[perm])
    assert np.array_equal(a, b)
