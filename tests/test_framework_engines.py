"""Unit tests for the comparator *engines* (the abstractions themselves,
below the primitive level): Ligra's edgeMap, PowerGraph's GAS loop with
vertex-cut accounting, Medusa's message supersteps, MapGraph's unfused
stages, and the CPU cost accumulator."""

import numpy as np
import pytest

from repro.frameworks.base import CpuCost, expand_frontier
from repro.frameworks.ligra import LigraEngine, DENSE_THRESHOLD_FRACTION
from repro.frameworks.powergraph import GasProgram, PowerGraphEngine
from repro.frameworks.medusa import MedusaEngine
from repro.frameworks.mapgraph import MapGraphEngine
from repro.graph import from_edges, generators
from repro.simt import calib


@pytest.fixture()
def diamond():
    return from_edges([(0, 1), (0, 2), (1, 3), (2, 3)], n=4)


# -- shared helpers ---------------------------------------------------------------


def test_expand_frontier(diamond):
    srcs, dsts, eids = expand_frontier(diamond, np.array([0, 1]))
    assert srcs.tolist() == [0, 0, 1]
    assert dsts.tolist() == [1, 2, 3]


def test_expand_frontier_empty(diamond):
    srcs, dsts, eids = expand_frontier(diamond, np.array([3]))
    assert len(srcs) == 0


def test_cpu_cost_accounting():
    c = CpuCost(seq_edges=100, rand_edges=50, vertices=10, heap_ops=20)
    expected = (100 * calib.CPU_EDGE + 50 * calib.CPU_EDGE_RANDOM
                + 10 * calib.CPU_VERTEX + 20 * calib.CPU_HEAP_OP)
    assert c.cycles() == pytest.approx(expected)
    assert c.serial_ms() == pytest.approx(calib.cpu_cycles_to_ms(expected))


def test_cpu_cost_parallel_divides_work():
    c = CpuCost(seq_edges=1_000_000)
    assert c.parallel_ms() < c.serial_ms()


def test_cpu_cost_parallel_span():
    quiet = CpuCost(seq_edges=100, supersteps=1)
    chatty = CpuCost(seq_edges=100, supersteps=100)
    assert chatty.parallel_ms(per_step_overhead_cycles=10_000) > \
        quiet.parallel_ms(per_step_overhead_cycles=10_000)


# -- Ligra engine -------------------------------------------------------------------


def test_ligra_edge_map_semantics(diamond):
    eng = LigraEngine(diamond)
    labels = np.full(4, -1)
    labels[0] = 0

    def update(s, t, e):
        labels[t] = 1
        return np.ones(len(t), dtype=bool)

    out = eng.edge_map(np.array([0]), update, cond=lambda t: labels[t] < 0)
    assert sorted(out.tolist()) == [1, 2]
    assert labels.tolist() == [0, 1, 1, -1]


def test_ligra_vertex_map(diamond):
    eng = LigraEngine(diamond)
    out = eng.vertex_map(np.arange(4), lambda v: v % 2 == 0)
    assert out.tolist() == [0, 2]


def test_ligra_dense_mode_cheaper_per_edge():
    """A huge frontier should flip edgeMap into dense mode, which charges
    sequential scans instead of random scatters."""
    g = generators.kronecker(10, seed=1)
    sparse_eng = LigraEngine(g)
    sparse_eng.edge_map(np.array([0]),
                        lambda s, t, e: np.zeros(len(t), dtype=bool),
                        cond=lambda t: np.ones(len(t), dtype=bool))
    assert sparse_eng.cost.rand_edges > 0

    dense_eng = LigraEngine(g)
    dense_eng.edge_map(np.arange(g.n),
                       lambda s, t, e: np.zeros(len(t), dtype=bool),
                       cond=lambda t: np.ones(len(t), dtype=bool))
    assert dense_eng.cost.rand_edges == 0  # dense: no random scatter charge


def test_ligra_supersteps_counted(diamond):
    eng = LigraEngine(diamond)
    for _ in range(3):
        eng.edge_map(np.array([0]),
                     lambda s, t, e: np.zeros(len(t), dtype=bool),
                     cond=lambda t: np.ones(len(t), dtype=bool))
    assert eng.cost.supersteps == 3


# -- PowerGraph engine ------------------------------------------------------------------


def test_powergraph_mirror_counting():
    g = generators.kronecker(9, seed=1)
    eng = PowerGraphEngine(g, workers=8, seed=3)
    # every vertex with edges on k>1 workers contributes k-1 mirrors
    assert 0 < eng.total_mirrors


def test_powergraph_single_worker_no_mirrors(diamond):
    eng = PowerGraphEngine(diamond, workers=1)
    assert eng.total_mirrors == 0


def test_powergraph_gas_program_runs(diamond):
    """The generic GAS loop computes in-degree-based max depth."""
    labels = np.full(4, np.inf)
    labels[0] = 0.0

    def gather(nbr, me, eid, st):
        return np.where(np.isfinite(st["labels"][nbr]),
                        st["labels"][nbr] + 1.0, 0.0)

    def apply(v, gathered, st):
        better = (gathered > 0) & (gathered < st["labels"][v])
        st["labels"][v] = np.where(better, gathered, st["labels"][v])
        return better

    eng = PowerGraphEngine(diamond, workers=2)
    state = {"labels": labels}
    steps = eng.run(GasProgram(gather=gather, apply=apply), state,
                    np.array([1, 2], dtype=np.int64), max_supersteps=10)
    assert steps >= 1
    assert eng.supersteps == steps


def test_powergraph_barrier_cost_scales_with_supersteps(diamond):
    a = PowerGraphEngine(diamond)
    a._barrier()
    b = PowerGraphEngine(diamond)
    for _ in range(10):
        b._barrier()
    assert b.elapsed_ms() > a.elapsed_ms()


def test_powergraph_makespan_over_workers():
    g = generators.kronecker(9, seed=1)
    eng = PowerGraphEngine(g, workers=4, seed=1)
    eng._charge_edges(np.arange(g.m))
    assert eng.worker_edge_work.max() > 0
    # roughly balanced hash partition: max within 2x of mean
    assert eng.worker_edge_work.max() < 2.0 * eng.worker_edge_work.mean()


# -- Medusa engine -----------------------------------------------------------------------


def test_medusa_superstep_min_combiner(diamond):
    eng = MedusaEngine(diamond)
    out = eng.superstep(np.array([0]),
                        lambda s, t, e: t.astype(float) * 10,
                        "min",
                        lambda v, msg: msg < 100)
    assert sorted(out.tolist()) == [1, 2]
    assert eng.machine.counters.kernel_launches == 4  # unfused stages


def test_medusa_superstep_sum_combiner(diamond):
    eng = MedusaEngine(diamond)
    seen = {}

    def vertex(v, msg):
        seen.update(dict(zip(v.tolist(), msg.tolist())))
        return np.zeros(len(v), dtype=bool)

    eng.superstep(np.array([1, 2]), lambda s, t, e: np.ones(len(s)),
                  "sum", vertex)
    assert seen[3] == 2.0  # two messages summed at the shared destination


def test_medusa_rejects_unknown_combiner(diamond):
    eng = MedusaEngine(diamond)
    with pytest.raises(ValueError):
        eng.superstep(np.array([0]), lambda s, t, e: np.ones(len(s)),
                      "mul", lambda v, m: np.zeros(len(v), dtype=bool))


def test_medusa_message_cost_charged(diamond):
    eng = MedusaEngine(diamond)
    eng.superstep(np.array([0]), lambda s, t, e: np.ones(len(s)),
                  "min", lambda v, m: np.zeros(len(v), dtype=bool))
    assert eng.machine.counters.edges_visited == 2


# -- MapGraph engine ----------------------------------------------------------------------


def test_mapgraph_superstep_stages(diamond):
    eng = MapGraphEngine(diamond)
    out = eng.superstep(np.array([0]),
                        lambda s, t, e: np.ones(len(s)), "min",
                        lambda v, msg: np.ones(len(v), dtype=bool))
    assert sorted(out.tolist()) == [1, 2]
    assert eng.machine.counters.kernel_launches == 4
    assert eng.machine.counters.bytes_moved > 0


def test_mapgraph_more_expensive_than_fused_equivalent(diamond):
    """The §4.3 claim in miniature: the same logical work costs more
    through unfused GAS stages than through one fused Gunrock advance."""
    from repro.core import Frontier, Functor, ProblemBase
    from repro.core.operators.advance import advance
    from repro.simt import Machine

    class P(ProblemBase):
        pass

    g = generators.kronecker(10, seed=1)
    m = Machine()
    advance(P(g, m), Frontier(np.arange(g.n, dtype=np.int64)), Functor())
    fused_ms = m.elapsed_ms()

    eng = MapGraphEngine(g)
    eng.superstep(np.arange(g.n, dtype=np.int64),
                  lambda s, t, e: np.ones(len(s)), "sum",
                  lambda v, msg: np.zeros(len(v), dtype=bool))
    assert eng.elapsed_ms() > fused_ms


# -- Pregel engine -----------------------------------------------------------------------


def test_pregel_bfs_matches_gunrock():
    from repro.frameworks import PregelFramework
    from repro.primitives import bfs

    g = generators.kronecker(9, seed=4)
    src = int(g.out_degrees.argmax())
    r = PregelFramework().bfs(g, src)
    assert np.array_equal(r["labels"], bfs(g, src).labels)
    assert r.detail["messages"] > 0


def test_pregel_sssp_matches_gunrock():
    from repro.frameworks import PregelFramework
    from repro.graph.build import with_random_weights
    from repro.primitives import sssp

    g = with_random_weights(generators.kronecker(9, seed=4), seed=1)
    r = PregelFramework().sssp(g, 0)
    ours = np.where(np.isfinite(r["labels"]), r["labels"], np.inf)
    assert np.allclose(ours, sssp(g, 0).labels, equal_nan=True)


def test_pregel_cc_partition():
    from repro.frameworks import PregelFramework
    from repro.primitives import cc

    g = generators.kronecker(9, seed=4)
    r = PregelFramework().cc(g)
    ref = cc(g)
    assert len(np.unique(r["component_ids"])) == ref.num_components


def test_pregel_barrier_cost_dominates_deep_graphs():
    """The paper's Pregel critique: synchronization per super-step makes
    deep traversals slow regardless of work volume."""
    from repro.frameworks import PregelFramework

    path = generators.path(300)
    star = generators.star(300)
    deep = PregelFramework().bfs(path, 0)
    shallow = PregelFramework().bfs(star, 0)
    assert deep.iterations > 50 * shallow.iterations
    assert deep.runtime_ms > 10 * shallow.runtime_ms


def test_pregel_vertex_centric_imbalance():
    """A hub's whole neighborhood lands on one worker — the worker
    makespan reflects it."""
    from repro.frameworks.pregel import PregelEngine

    hub = generators.star(5000)
    eng = PregelEngine(hub, workers=8)
    verts = np.arange(hub.n, dtype=np.int64)
    eng._charge_vertices(verts, hub.out_degrees.astype(np.float64))
    assert eng.worker_cycles.max() > 3 * eng.worker_cycles.mean()


def test_pregel_rejects_unknown_combiner():
    from repro.frameworks.pregel import PregelEngine, VertexProgram

    g = generators.star(10)

    def compute(active, msgs, state):
        return np.ones(len(active), dtype=bool), np.zeros(len(active))

    eng = PregelEngine(g)
    with pytest.raises(ValueError):
        eng.run(VertexProgram(compute, combiner="mul"), {},
                np.array([0], dtype=np.int64), max_supersteps=2)
