"""Batched multi-source execution: bitwise equivalence + batch planning.

The serving layer's headline acceptance criterion: a request served from
a batched multi-source run must be *bitwise identical* to the same
request served alone.  These tests pin that for BFS, SSSP, and PPR on
every topology class, including duplicate sources inside one batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import block_diagonal, from_edges, generators
from repro.primitives import bfs, ppr, sssp
from repro.serve import (batched_bfs, batched_ppr, batched_sssp,
                         execute_batch, plan_batches, query_key)

SOURCES = [0, 5, 17, 100, 5]  # includes a duplicate lane


# -- block-diagonal replication ----------------------------------------------


def test_block_diagonal_structure(kron_graph):
    g = kron_graph
    laned = block_diagonal(g, 3)
    assert laned.n == 3 * g.n
    assert laned.m == 3 * g.m
    for lane in range(3):
        lo, hi = lane * g.n, (lane + 1) * g.n
        sl = laned.indptr[lo:hi + 1] - laned.indptr[lo]
        np.testing.assert_array_equal(sl, g.indptr)
        np.testing.assert_array_equal(
            laned.indices[laned.indptr[lo]:laned.indptr[hi]] - lane * g.n,
            g.indices)


def test_block_diagonal_copies_weights(kron_weighted):
    laned = block_diagonal(kron_weighted, 2)
    np.testing.assert_array_equal(
        laned.edge_values, np.tile(kron_weighted.edge_values, 2))


def test_block_diagonal_identity_and_validation(kron_graph):
    assert block_diagonal(kron_graph, 1) is kron_graph
    with pytest.raises(ValueError):
        block_diagonal(kron_graph, 0)


# -- bitwise equivalence ------------------------------------------------------


def test_batched_bfs_bitwise_equal_per_source(kron_graph):
    lanes = batched_bfs(kron_graph, SOURCES)
    for src, lane in zip(SOURCES, lanes):
        solo = bfs(kron_graph, src, idempotent=False, direction="push")
        np.testing.assert_array_equal(lane.arrays["labels"], solo.labels)
        np.testing.assert_array_equal(lane.arrays["preds"], solo.preds)
        # depths are traversal-mode independent: the default BFS agrees
        np.testing.assert_array_equal(lane.arrays["labels"],
                                      bfs(kron_graph, src).labels)


def test_batched_bfs_bitwise_equal_road(road_graph):
    srcs = [0, 11, 200]
    for src, lane in zip(srcs, batched_bfs(road_graph, srcs)):
        solo = bfs(road_graph, src, idempotent=False, direction="push")
        np.testing.assert_array_equal(lane.arrays["labels"], solo.labels)
        np.testing.assert_array_equal(lane.arrays["preds"], solo.preds)


def test_batched_sssp_bitwise_equal_per_source(kron_weighted):
    lanes = batched_sssp(kron_weighted, SOURCES)
    for src, lane in zip(SOURCES, lanes):
        solo = sssp(kron_weighted, src, use_priority_queue=False)
        np.testing.assert_array_equal(lane.arrays["labels"], solo.labels)
        np.testing.assert_array_equal(lane.arrays["preds"], solo.preds)


def test_batched_sssp_unweighted_unit_costs(kron_graph):
    srcs = [3, 3, 9]
    for src, lane in zip(srcs, batched_sssp(kron_graph, srcs)):
        solo = sssp(kron_graph, src, use_priority_queue=False)
        np.testing.assert_array_equal(lane.arrays["labels"], solo.labels)


def test_batched_ppr_bitwise_equal_per_seed_set(kron_graph):
    seed_sets = [[0], [5, 9], [17], [5, 9]]
    lanes = batched_ppr(kron_graph, seed_sets)
    for seeds, lane in zip(seed_sets, lanes):
        solo = ppr(kron_graph, seeds)
        np.testing.assert_array_equal(lane.arrays["rank"], solo.rank)


def test_batched_bfs_isolated_source(tiny_graph):
    # vertex 5 is isolated: its lane must not leak into others
    lanes = batched_bfs(tiny_graph, [0, 5])
    solo0 = bfs(tiny_graph, 0, idempotent=False, direction="push")
    solo5 = bfs(tiny_graph, 5, idempotent=False, direction="push")
    np.testing.assert_array_equal(lanes[0].arrays["labels"], solo0.labels)
    np.testing.assert_array_equal(lanes[1].arrays["labels"], solo5.labels)


def test_batched_source_validation(tiny_graph):
    with pytest.raises(ValueError):
        batched_bfs(tiny_graph, [0, tiny_graph.n])
    with pytest.raises(ValueError):
        batched_ppr(tiny_graph, [[0], []])


# -- batch planning -----------------------------------------------------------


def test_plan_batches_dedupes_identical_queries():
    pending = [(1, {"src": 4}), (2, {"src": 7}), (3, {"src": 4})]
    batches = plan_batches("bfs", pending, max_lanes=8)
    assert len(batches) == 1
    batch = batches[0]
    assert batch.lanes == 2
    assert batch.request_count == 3
    by_key = {q.key: q.request_ids for q in batch.queries}
    assert by_key[query_key("bfs", {"src": 4})] == [1, 3]
    assert by_key[query_key("bfs", {"src": 7})] == [2]


def test_plan_batches_respects_lane_cap():
    pending = [(i, {"src": i}) for i in range(7)]
    batches = plan_batches("sssp", pending, max_lanes=3)
    assert [b.lanes for b in batches] == [3, 3, 1]


def test_plan_batches_solo_wtf_is_one_lane_each():
    pending = [(0, {"user": 1, "k": 5}), (1, {"user": 2, "k": 5})]
    batches = plan_batches("wtf", pending, max_lanes=8)
    assert [b.lanes for b in batches] == [1, 1]


def test_plan_batches_unknown_primitive():
    with pytest.raises(ValueError, match="served primitives"):
        plan_batches("mst", [(0, {})])


def test_query_key_order_independent():
    assert query_key("wtf", {"user": 3, "k": 10}) == \
        query_key("wtf", {"k": 10, "user": 3})


# -- execute_batch fan-out ----------------------------------------------------


def test_execute_batch_maps_keys_to_lanes(kron_graph):
    pending = [(0, {"src": 2}), (1, {"src": 6}), (2, {"src": 2})]
    (batch,) = plan_batches("bfs", pending)
    results = execute_batch(kron_graph, batch)
    assert set(results) == {q.key for q in batch.queries}
    solo = bfs(kron_graph, 2, idempotent=False, direction="push")
    np.testing.assert_array_equal(
        results[query_key("bfs", {"src": 2})].arrays["labels"], solo.labels)


def test_execute_batch_pagerank_coalesces(kron_graph):
    from repro.primitives import pagerank

    pending = [(0, {}), (1, {}), (2, {"damping": 0.7})]
    (batch,) = plan_batches("pagerank", pending)
    assert batch.lanes == 2  # two unique parameterizations
    results = execute_batch(kron_graph, batch)
    np.testing.assert_array_equal(
        results[query_key("pagerank", {})].arrays["rank"],
        pagerank(kron_graph).rank)
    np.testing.assert_array_equal(
        results[query_key("pagerank", {"damping": 0.7})].arrays["rank"],
        pagerank(kron_graph, damping=0.7).rank)


def test_execute_batch_wtf_matches_pipeline():
    from repro.primitives import who_to_follow

    g = generators.kronecker(8, seed=11)
    user = int(g.out_degrees.argmax())
    (batch,) = plan_batches("wtf", [(0, {"user": user, "k": 5})])
    results = execute_batch(g, batch)
    direct = who_to_follow(g, user, k=5)
    payload = results[query_key("wtf", {"user": user, "k": 5})]
    np.testing.assert_array_equal(payload.arrays["recommendations"],
                                  direct.recommendations)
    np.testing.assert_array_equal(payload.arrays["similar_users"],
                                  direct.similar_users)


def test_batched_launch_amortization(kron_graph):
    """The point of batching: far fewer kernel launches than N solo runs."""
    from repro.simt import Machine

    srcs = [0, 5, 17, 100]
    m_batch = Machine()
    batched_bfs(kron_graph, srcs, machine=m_batch)
    solo_launches = 0
    for s in srcs:
        m = Machine()
        bfs(kron_graph, s, idempotent=False, direction="push", machine=m)
        solo_launches += m.counters.kernel_launches
    assert m_batch.counters.kernel_launches < solo_launches


def test_lane_result_nbytes(tiny_graph):
    lane = batched_bfs(tiny_graph, [0])[0]
    assert lane.nbytes == sum(a.nbytes for a in lane.arrays.values())


def test_batched_bfs_many_lanes_tiny():
    g = from_edges([(0, 1), (1, 2), (2, 3)], n=4, undirected=True)
    srcs = list(range(4)) * 2
    for src, lane in zip(srcs, batched_bfs(g, srcs)):
        solo = bfs(g, src, idempotent=False, direction="push")
        np.testing.assert_array_equal(lane.arrays["labels"], solo.labels)
        np.testing.assert_array_equal(lane.arrays["preds"], solo.preds)
