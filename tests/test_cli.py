"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    return main(list(argv))


def test_datasets_listing(capsys):
    assert run_cli("datasets") == 0
    out = capsys.readouterr().out
    for name in ("soc", "bitcoin", "kron", "roadnet"):
        assert name in out


def test_info_generated(capsys):
    assert run_cli("info", "--generate", "kron:8") == 0
    out = capsys.readouterr().out
    assert "vertices" in out and "pseudo-diameter" in out


@pytest.mark.parametrize("prim", ["bfs", "sssp", "bc", "pagerank", "cc",
                                  "mst", "mis", "color", "triangles",
                                  "kcore", "labelprop"])
def test_run_every_primitive(capsys, prim):
    assert run_cli("run", prim, "--generate", "kron:8") == 0
    out = capsys.readouterr().out
    assert "simulated" in out


def test_run_named_dataset(capsys):
    assert run_cli("run", "bfs", "--dataset", "kron", "--scale", "0.0005") == 0
    assert "reached" in capsys.readouterr().out


def test_compare(capsys):
    assert run_cli("compare", "bfs", "--generate", "kron:8") == 0
    out = capsys.readouterr().out
    for fw in ("BGL", "Gunrock", "MapGraph"):
        assert fw in out


def test_generate_roundtrip(tmp_path, capsys):
    path = str(tmp_path / "g.mtx")
    assert run_cli("generate", "--generate", "road:10x10",
                   "--output", path) == 0
    assert run_cli("info", path) == 0
    assert "vertices" in capsys.readouterr().out


def test_generate_weighted_dimacs(tmp_path):
    path = str(tmp_path / "g.gr")
    assert run_cli("generate", "--generate", "kron:7", "--weighted",
                   "--output", path) == 0
    from repro.graph import io

    g = io.read_dimacs(path)
    assert g.edge_values is not None


def test_generator_specs():
    for spec in ("kron:8", "road:12x8", "hub:500", "powerlaw:500",
                 "random:500"):
        assert run_cli("info", "--generate", spec) == 0


def test_bad_generator_spec():
    with pytest.raises(SystemExit):
        run_cli("info", "--generate", "nope:1")


def test_missing_graph_source():
    with pytest.raises(SystemExit):
        run_cli("info")


def test_parser_has_all_commands():
    parser = build_parser()
    text = parser.format_help()
    for cmd in ("info", "generate", "run", "compare", "datasets"):
        assert cmd in text


def test_parser_has_serve_command():
    text = build_parser().format_help()
    assert "serve" in text


def test_run_json_output(capsys):
    import json

    assert run_cli("run", "bfs", "--generate", "kron:8", "--json") == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["primitive"] == "bfs"
    assert payload["counters"]["kernel_launches"] > 0
    assert set(payload["arrays"]) == {"labels", "preds"}
    for arr in payload["arrays"].values():
        assert set(arr) == {"dtype", "shape", "crc32"}


def test_run_json_deterministic(capsys):
    assert run_cli("run", "sssp", "--generate", "kron:8", "--json") == 0
    first = capsys.readouterr().out
    assert run_cli("run", "sssp", "--generate", "kron:8", "--json") == 0
    assert capsys.readouterr().out == first


def test_serve_text_report(capsys):
    assert run_cli("serve", "--generate", "kron:9", "--requests", "80",
                   "--seed", "5") == 0
    out = capsys.readouterr().out
    assert "cache hit rate" in out
    assert "batch sizes per primitive" in out


def test_serve_json_deterministic(capsys):
    import json

    args = ("serve", "--generate", "kron:9", "--requests", "80",
            "--seed", "5", "--json")
    assert run_cli(*args) == 0
    first = capsys.readouterr().out
    assert run_cli(*args) == 0
    assert capsys.readouterr().out == first
    payload = json.loads(first)
    assert payload["requests"] == 80
    assert payload["stale_hits"] == 0
    assert payload["hit_rate"] > 0


def test_serve_closed_loop_with_faults(capsys):
    assert run_cli("serve", "--generate", "kron:9", "--requests", "60",
                   "--seed", "3", "--mode", "closed", "--clients", "4",
                   "--updates", "1", "--fault-rate", "0.2") == 0
    assert "requests" in capsys.readouterr().out
