"""Harness tests: runner matrix, table rendering, tracing, audits."""

import numpy as np
import pytest

from repro.frameworks import BglFramework, GunrockFramework
from repro.graph import generators, datasets
from repro.harness import (Matrix, Cell, geomean, run_cell, run_matrix,
                           render_table1, render_table2, render_table3,
                           render_speedup_summary, operator_flow, all_flows,
                           render_flows, footprint, render_footprint,
                           primitive_code_sizes, count_code_lines,
                           PAPER_TABLE2_MS, PAPER_FLOWS)
from repro.harness.runner import PRIMITIVES, _pick_source


@pytest.fixture(scope="module")
def small_matrix():
    return run_matrix(scale=1 / 2048, primitives=("bfs", "cc"),
                      dataset_names=("kron", "roadnet"),
                      frameworks=[BglFramework(), GunrockFramework()])


def test_run_matrix_shape(small_matrix):
    assert len(small_matrix.cells) == 2 * 2 * 2
    assert small_matrix.frameworks() == ["BGL", "Gunrock"]
    assert small_matrix.datasets() == ["kron", "roadnet"]


def test_matrix_get(small_matrix):
    cell = small_matrix.get("Gunrock", "bfs", "kron")
    assert cell is not None
    assert cell.supported
    assert cell.runtime_ms > 0
    assert small_matrix.get("Nope", "bfs", "kron") is None


def test_matrix_speedup(small_matrix):
    sp = small_matrix.speedup("bfs", "kron", "Gunrock", "BGL")
    assert sp is not None and sp > 0


def test_run_cell_unsupported():
    from repro.frameworks import MedusaFramework

    g = generators.kronecker(7, seed=1)
    cell = run_cell(MedusaFramework(), "bc", g, "kron")
    assert not cell.supported
    assert cell.runtime_ms is None


def test_geomean():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([]) != geomean([])  # NaN
    assert geomean([2.0, None, 8.0]) == pytest.approx(4.0)


def test_pick_source():
    g = generators.star(10)
    assert _pick_source(g, 0) == 0
    assert _pick_source(g, 5) == 5       # leaf still has degree 1
    from repro.graph import from_edges

    g2 = from_edges([(1, 2)], n=3)
    assert _pick_source(g2, 0) == 1      # vertex 0 isolated -> max degree


def test_primitives_constant():
    assert PRIMITIVES == ["bfs", "sssp", "bc", "pagerank", "cc"]


# -- tables ---------------------------------------------------------------------


def test_render_table1_contains_rows():
    from repro.graph import properties

    stats = {name: properties.stats(datasets.load(name, scale=1 / 2048), seed=1)
             for name in ("kron", "roadnet")}
    text = render_table1(stats)
    assert "kron" in text and "roadnet" in text
    assert "paper" in text


def test_render_table2(small_matrix):
    text = render_table2(small_matrix, "bfs")
    assert "BGL" in text and "Gunrock" in text
    assert "MTEPS" in text


def test_render_speedup_summary(small_matrix):
    text = render_speedup_summary(small_matrix)
    assert "Gunrock" in text
    assert "bfs" in text


def test_render_table3():
    rows = [{"dataset": "kron_g500-logn8", "vertices": 256, "edges": 4000,
             "bfs_ms": 1.0, "bc_ms": 2.0, "sssp_ms": 3.0, "cc_ms": 4.0,
             "pagerank_ms": 5.0, "bfs_mteps": 10.0, "bc_mteps": 20.0,
             "sssp_mteps": 30.0}]
    text = render_table3(rows)
    assert "kron_g500-logn8" in text


def test_paper_table2_reference_complete():
    for prim in PRIMITIVES:
        assert prim in PAPER_TABLE2_MS
        for ds in ("soc", "bitcoin", "kron", "roadnet"):
            assert ds in PAPER_TABLE2_MS[prim]
            assert "Gunrock" in PAPER_TABLE2_MS[prim][ds]


# -- tracing -------------------------------------------------------------------


def test_operator_flow_bfs():
    g = generators.kronecker(8, seed=2)
    assert operator_flow("bfs", g) == ["advance", "filter"]


def test_operator_flow_unknown():
    g = generators.kronecker(8, seed=2)
    with pytest.raises(ValueError):
        operator_flow("nope", g)


def test_operator_flow_unknown_lists_valid_names():
    g = generators.kronecker(8, seed=2)
    with pytest.raises(ValueError, match="traceable primitives"):
        operator_flow("nope", g)
    try:
        operator_flow("nope", g)
    except ValueError as err:
        for prim in PAPER_FLOWS:
            assert prim in str(err)


def test_operator_flow_ppr():
    g = generators.kronecker(8, seed=2)
    assert operator_flow("ppr", g) == ["advance", "filter"]


def test_operator_flow_salsa_and_wtf():
    g = generators.kronecker(8, seed=2)
    assert operator_flow("salsa", g) == ["advance", "advance(backward)"]
    assert operator_flow("wtf", g) == ["advance", "advance(backward)"]


def test_operator_flow_wtf_picks_a_walking_user():
    # src with zero followees: the tracer falls back to a hub vertex
    # instead of tripping the cold-start path
    g = generators.hub_graph(200, seed=4)
    sink = int(g.out_degrees.argmin())
    if g.out_degrees[sink] == 0:
        assert operator_flow("wtf", g, src=sink) == \
            ["advance", "advance(backward)"]


def test_all_flows_and_render():
    g = generators.kronecker(8, seed=2)
    flows = all_flows(g)
    assert set(flows) == set(PAPER_FLOWS)
    text = render_flows(flows)
    assert "bfs" in text and "loop" in text


# -- memory / code size -----------------------------------------------------------


def test_footprint_keys():
    g = generators.kronecker(8, seed=2)
    coeffs = footprint(g)
    assert set(coeffs) == {"bfs", "sssp", "bc", "pagerank", "cc"}
    for c in coeffs.values():
        assert c["alpha"] >= 0 and c["beta"] > 0
    assert "alpha" in render_footprint(g)


def test_code_sizes():
    sizes = primitive_code_sizes()
    assert set(sizes) == {"bfs", "sssp", "bc", "pagerank", "cc"}
    assert all(30 < n < 300 for n in sizes.values())


def test_count_code_lines_ignores_comments_and_docstrings(tmp_path):
    p = tmp_path / "mod.py"
    p.write_text('"""module docstring\nspanning lines"""\n'
                 "# comment\n\n"
                 "def f():\n"
                 '    """doc"""\n'
                 "    return 1  # trailing comment\n")
    assert count_code_lines(p) == 2  # def line + return line


def test_run_cell_timeout_returns_timed_out_cell():
    import time as _time

    class _SlowFramework(GunrockFramework):
        def run(self, primitive, graph, **kw):
            _time.sleep(5.0)
            return super().run(primitive, graph, **kw)

    g = generators.kronecker(6, seed=1)
    cell = run_cell(_SlowFramework(), "bfs", g, "kron", timeout_s=0.1)
    assert cell.timed_out
    assert not cell.supported
    assert cell.wall_ms < 2000


def test_run_cell_timeout_disabled_by_default():
    g = generators.kronecker(6, seed=1)
    cell = run_cell(GunrockFramework(), "bfs", g, "kron")
    assert not cell.timed_out
    assert cell.supported


def test_run_cell_timeout_unexpired_keeps_result():
    g = generators.kronecker(6, seed=1)
    cell = run_cell(GunrockFramework(), "bfs", g, "kron", timeout_s=30.0)
    assert not cell.timed_out
    assert cell.supported


def test_run_cell_rejects_bad_timeout():
    g = generators.kronecker(6, seed=1)
    with pytest.raises(ValueError):
        run_cell(GunrockFramework(), "bfs", g, "kron", timeout_s=0.0)
