"""The fused engine's identity contract, fallback behavior, and plan cache.

The tentpole invariant: for every fusable primitive, a fused run is
bitwise-identical to the pooled library loop — every output array
(values *and* dtype), every kernel record (name, cycles, items,
iteration), the total simulated cycles, and every aggregate counter.
Hypothesis drives random topologies through all four engines via the
shared differential harness (:mod:`engines`), which also asserts the
la backend's per-primitive contract; the remaining tests pin the
fallback contract (blocked primitives take the pooled path and surface
a reason) and the per-graph plan cache.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from engines import counter_signature as _counter_signature, run_all_engines
from repro.core.engine import (clear_fallbacks, engine, engine_mode,
                               fallback_log, last_fallback, set_engine)
from repro.graph import from_edges
from repro.graph.build import with_random_weights
from repro.simt import Machine


# -- strategies ---------------------------------------------------------------


@st.composite
def edge_lists(draw, max_n=24, max_m=90):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=m, max_size=m))
    return n, edges


# -- cross-engine identity, per primitive (shared harness) --------------------


@given(edge_lists(), st.integers(0, 23),
       st.sampled_from(["auto", "push"]), st.booleans())
@settings(max_examples=25, deadline=None)
def test_bfs_cross_engine_identity(data, src, direction, record_preds):
    n, edges = data
    g = from_edges(edges, n=n, undirected=True)
    run_all_engines("bfs", g, src=src % n, direction=direction,
                    record_preds=record_preds)


@given(edge_lists(), st.integers(0, 23), st.booleans(), st.integers(0, 2**32))
@settings(max_examples=25, deadline=None)
def test_sssp_cross_engine_identity(data, src, use_pq, weight_seed):
    n, edges = data
    g = with_random_weights(from_edges(edges, n=n, undirected=True),
                            seed=weight_seed)
    run_all_engines("sssp", g, src=src % n, use_priority_queue=use_pq)


@given(edge_lists(), st.integers(1, 40))
@settings(max_examples=20, deadline=None)
def test_pagerank_cross_engine_identity(data, iterations):
    n, edges = data
    g = from_edges(edges, n=n, undirected=True)
    run_all_engines("pagerank", g, max_iterations=iterations)


@given(edge_lists(), st.lists(st.integers(0, 23), min_size=1, max_size=4))
@settings(max_examples=20, deadline=None)
def test_ppr_cross_engine_identity(data, seeds):
    n, edges = data
    g = from_edges(edges, n=n, undirected=True)
    run_all_engines("ppr", g, seeds=[s % n for s in seeds],
                    max_iterations=40)


@given(edge_lists())
@settings(max_examples=20, deadline=None)
def test_cc_cross_engine_identity(data):
    n, edges = data
    g = from_edges(edges, n=n, undirected=True)
    run_all_engines("cc", g)


@given(edge_lists(), st.integers(0, 23))
@settings(max_examples=20, deadline=None)
def test_bc_cross_engine_identity(data, src):
    # bc has no LA lowering: the harness asserts the la run falls back
    # to pooled (with a reason) and stays bitwise-identical
    n, edges = data
    g = from_edges(edges, n=n, undirected=True)
    run_all_engines("bc", g, src=src % n)


# -- fallback contract --------------------------------------------------------


def _line_graph():
    return from_edges([(i, i + 1) for i in range(16)], n=17, undirected=True)


def test_non_idempotent_bfs_falls_back_with_reason():
    """The CAS-claim BFS path is not specialized: fused runs must take
    the pooled loop and record why."""
    from repro.primitives import bfs

    g = _line_graph()
    clear_fallbacks()
    with engine("fused"):
        mf = Machine()
        rf = bfs(g, 0, machine=mf, idempotent=False)
    prim, reason = last_fallback()
    assert prim == "bfs"
    assert "idempotent" in reason
    with engine("pooled"):
        mp = Machine()
        rp = bfs(g, 0, machine=mp, idempotent=False)
    assert np.array_equal(rf.labels, rp.labels)
    assert _counter_signature(mf) == _counter_signature(mp)


def test_alternating_cc_falls_back_with_reason():
    from repro.primitives import cc

    g = _line_graph()
    clear_fallbacks()
    with engine("fused"):
        r = cc(g, machine=Machine(), alternate=True)
    prim, reason = last_fallback()
    assert prim == "cc"
    assert "alternating" in reason
    assert r.num_components == 1


def test_unplanned_primitive_falls_back():
    """A primitive with no fused runner runs the library loop untouched."""
    from repro.primitives import mis

    g = _line_graph()
    clear_fallbacks()
    with engine("fused"):
        r = mis(g, machine=Machine())
    prim, reason = last_fallback()
    assert "no fused runner" in reason
    assert r.set_size > 0


def test_sanitizer_disables_fusion():
    """The race sanitizer instruments the library operators; fused runs
    would escape it, so they must fall back."""
    from repro.analysis import sanitize
    from repro.primitives import bfs

    g = _line_graph()
    clear_fallbacks()
    with engine("fused"), sanitize(strict=True):
        bfs(g, 0, machine=Machine())
    prim, reason = last_fallback()
    assert prim == "bfs"
    assert "sanitiz" in reason


def test_fallback_log_accumulates_and_clears():
    from repro.primitives import bfs

    g = _line_graph()
    clear_fallbacks()
    with engine("fused"):
        bfs(g, 0, idempotent=False)
        bfs(g, 0, idempotent=False)
    assert len(fallback_log()) == 2
    clear_fallbacks()
    assert fallback_log() == []
    assert last_fallback() is None


# -- engine selection ---------------------------------------------------------


def test_engine_context_restores_mode():
    before = engine_mode()
    with engine("fused"):
        assert engine_mode() == "fused"
        with engine("unpooled"):
            assert engine_mode() == "unpooled"
        assert engine_mode() == "fused"
    assert engine_mode() == before


def test_engine_rejects_unknown_mode():
    import pytest

    with pytest.raises(ValueError):
        set_engine("warp-speed")


def test_fused_engine_implies_pooling():
    from repro.core.workspace import pooling_enabled

    with engine("fused"):
        assert pooling_enabled()
    with engine("unpooled"):
        assert not pooling_enabled()


# -- plans and the per-graph cache --------------------------------------------


def test_plan_cache_reuses_compiled_plan():
    from repro.analysis.plan import plan_for

    g = _line_graph()
    first = plan_for("bfs", g)
    assert plan_for("bfs", g) is first
    # a different graph compiles its own regime table
    other = plan_for("bfs", _line_graph())
    assert other is not first
    assert other.static_dict() == first.static_dict()


def test_fused_run_attaches_plan_and_caches_it():
    from repro.primitives import bfs

    g = _line_graph()
    assert g._fused_plans is None or "bfs" not in g._fused_plans
    with engine("fused"):
        bfs(g, 0, machine=Machine())
    assert "bfs" in g._fused_plans
    plan = g._fused_plans["bfs"]
    assert plan.fusable
    assert plan.regimes is not None and plan.regimes.n == g.n


def test_blocked_plan_carries_reasons():
    from repro.analysis.plan import compile_plan

    plan = compile_plan(None, "nonesuch")
    assert not plan.fusable
    assert any("no analysis report" in r for r in plan.blocked)


def test_static_plans_cover_fusable_primitives():
    from repro.analysis.plan import static_plans

    plans = static_plans()
    for name in ("bfs", "sssp", "pagerank", "ppr", "cc", "bc"):
        assert name in plans, name
        assert plans[name].fusable, (name, plans[name].blocked)
    # hardwired primitives must be blocked, never silently planned
    assert not plans["triangles"].fusable


def test_plan_masks_and_lowerings_are_classified():
    from repro.analysis.plan import static_plans

    plans = static_plans()
    valid = {"known_true", "known_false", "dynamic"}
    for plan in plans.values():
        for stage in plan.stages:
            assert stage.cond_mask in valid
            assert stage.apply_mask in valid
    # sssp's relax has no cond_edge: every lane enters apply
    relax = next(s for s in plans["sssp"].stages if s.op == "advance")
    assert relax.cond_mask == "known_true"
    assert relax.apply_mask == "dynamic"
    assert plans["sssp"].atomic_lowerings["min"] == "winner_lane_fold"
    assert plans["pagerank"].atomic_lowerings["add"] == "segmented_sum"


def test_report_schema_v2_serializes_plans():
    from repro.analysis.fusion import analyze_paths
    from repro.analysis.report import (REPORT_SCHEMA_VERSION,
                                       report_to_dict, validate_report_dict)
    import os

    import repro

    assert REPORT_SCHEMA_VERSION == 2
    pkg = os.path.dirname(os.path.abspath(repro.__file__))
    report = analyze_paths([os.path.join(pkg, "primitives")])
    data = report_to_dict(report)
    assert validate_report_dict(data) == []
    assert data["fused_plans"]["bfs"]["fusable"]


# -- observability ------------------------------------------------------------


def test_fused_span_and_dispatch_counter():
    from repro.obs import observe
    from repro.obs.spans import CAT_FUSED
    from repro.primitives import bfs

    g = _line_graph()
    with observe() as ob, engine("fused"):
        bfs(g, 0, machine=Machine())
        bfs(g, 0, machine=Machine(), idempotent=False)  # falls back
    fused_spans = [s for s in ob.tracer.spans if s.cat == CAT_FUSED]
    assert len(fused_spans) == 1
    assert fused_spans[0].args["primitive"] == "bfs"
    assert "advance" in fused_spans[0].args["fused_ops"]
    assert fused_spans[0].args["stage_count"] >= 1
    counts = ob.metrics.as_dict()
    assert counts[
        'repro_fused_dispatch_total{engine="fused",primitive="bfs"}'] == 1.0
    assert counts[
        'repro_fused_dispatch_total{engine="pooled",primitive="bfs"}'] == 1.0
