"""Fault injection, checkpointing, and recovery (repro.resilience).

The load-bearing invariant: any fault schedule with a fixed seed yields
results *identical* to the fault-free run — faults only cost simulated
time.
"""

import numpy as np
import pytest

from repro.graph import generators, with_random_weights
from repro.multi import MultiMachine, multi_gpu_bfs, multi_gpu_pagerank, \
    partition_1d, redistribute
from repro.primitives import bfs, pagerank, sssp
from repro.resilience import (CheckpointStore, DataCorruptionFault,
                              ExchangeTimeout, FaultInjector, FaultKind,
                              FaultPlan, FaultSpec, RetryPolicy,
                              TransientKernelFault, parse_kinds)
from repro.resilience.chaos import format_report, run_chaos
from repro.simt import Machine


@pytest.fixture(scope="module")
def g():
    return generators.kronecker(9, seed=3)


@pytest.fixture(scope="module")
def src(g):
    return int(g.out_degrees.argmax())


@pytest.fixture(scope="module")
def gw(g):
    return with_random_weights(g, seed=2)


# -- fault plans --------------------------------------------------------------


def test_fault_plan_seed_determinism():
    kinds = list(FaultKind)
    a = FaultPlan.random(7, kinds, steps=10, devices=4, per_kind=2)
    b = FaultPlan.random(7, kinds, steps=10, devices=4, per_kind=2)
    assert a.to_bytes() == b.to_bytes()
    assert FaultPlan.random(8, kinds, steps=10, devices=4,
                            per_kind=2).to_bytes() != a.to_bytes()


def test_fault_plan_caller_order_independent():
    fwd = FaultPlan.random(1, [FaultKind.CORRUPTION, FaultKind.STRAGGLER],
                           steps=5)
    rev = FaultPlan.random(1, [FaultKind.STRAGGLER, FaultKind.CORRUPTION],
                           steps=5)
    assert fwd.to_bytes() == rev.to_bytes()


def test_parse_kinds():
    assert parse_kinds("device-loss, straggler") == \
        [FaultKind.DEVICE_LOSS, FaultKind.STRAGGLER]
    with pytest.raises(ValueError, match="unknown fault kind"):
        parse_kinds("bit-rot")


def test_injector_consumes_counts():
    plan = FaultPlan([FaultSpec(FaultKind.EXCHANGE_TIMEOUT, step=3,
                                site="exchange", count=2)])
    inj = FaultInjector(plan)
    kinds = (FaultKind.EXCHANGE_TIMEOUT,)
    assert inj.poll(site="exchange", step=2, kinds=kinds) is None
    assert inj.poll(site="exchange", step=3, kinds=kinds) is not None
    assert inj.poll(site="exchange", step=3, kinds=kinds) is not None
    assert inj.poll(site="exchange", step=3, kinds=kinds) is None
    assert inj.injected == 2
    assert inj.exhausted()


def test_injector_site_matching():
    plan = FaultPlan([FaultSpec(FaultKind.TRANSIENT_KERNEL, step=1,
                                site="kernel")])
    inj = FaultInjector(plan)
    kinds = (FaultKind.TRANSIENT_KERNEL,)
    assert inj.poll(site="exchange", step=1, kinds=kinds) is None
    assert inj.poll(site="filter", step=1, kinds=kinds) is not None


def test_injector_device_matching():
    plan = FaultPlan([FaultSpec(FaultKind.DEVICE_LOSS, step=1, device=2)])
    inj = FaultInjector(plan)
    assert inj.on_launch(1, 0, 100.0) == 100.0
    with pytest.raises(Exception) as err:
        inj.on_launch(1, 2, 100.0)
    assert err.value.device == 2


# -- checkpointing ------------------------------------------------------------


def test_checkpoint_cow_shares_unchanged_arrays(g):
    from repro.primitives.bfs import BfsProblem

    problem = BfsProblem(g, Machine())
    problem.set_source(0)
    store = CheckpointStore(problem, keep=2)
    f = np.array([0], dtype=np.int64)
    first = store.snapshot(0, f, "vertex")
    problem.labels[1] = 1  # only labels changes
    second = store.snapshot(1, f, "vertex")
    assert second.arrays["preds"] is first.arrays["preds"]
    assert second.arrays["labels"] is not first.arrays["labels"]
    assert second.nbytes < first.nbytes  # COW: only the delta is copied


def test_checkpoint_restore_roundtrip(g):
    from repro.primitives.bfs import BfsProblem

    problem = BfsProblem(g, Machine())
    problem.set_source(0)
    store = CheckpointStore(problem)
    saved = problem.labels.copy()
    store.snapshot(0, np.array([0], dtype=np.int64), "vertex")
    problem.labels[:] = 99
    ck = store.restore()
    assert ck.iteration == 0
    assert np.array_equal(problem.labels, saved)
    assert store.restores == 1


def test_checkpoint_ring_buffer(g):
    from repro.primitives.bfs import BfsProblem

    problem = BfsProblem(g, Machine())
    store = CheckpointStore(problem, keep=2)
    for i in range(5):
        store.snapshot(i, np.zeros(0, dtype=np.int64), "vertex")
    assert len(store) == 2
    assert store.latest().iteration == 4


def test_checkpoint_charges_simulated_time(g):
    from repro.primitives.bfs import BfsProblem

    m = Machine()
    problem = BfsProblem(g, m)
    store = CheckpointStore(problem)
    before = m.elapsed_ms()
    store.snapshot(0, np.array([0], dtype=np.int64), "vertex")
    assert m.elapsed_ms() > before  # checkpointing is not free


# -- single-GPU recovery ------------------------------------------------------


def _bfs_ref(g, src):
    return bfs(g, src, machine=Machine())


def test_bfs_transient_restore_free_replay(g, src):
    ref = _bfs_ref(g, src)
    plan = FaultPlan([FaultSpec(FaultKind.TRANSIENT_KERNEL, step=2,
                                site="advance")])
    r = bfs(g, src, machine=Machine(), checkpoint_every=2, faults=plan)
    assert np.array_equal(r.labels, ref.labels)
    assert r.recovery["faults_injected"] == 1
    # idempotent BFS + fault before the step's first kernel: no restore
    assert r.recovery["rollbacks"] == 0
    assert r.recovery["restores"] == 0
    assert r.recovery["replayed_supersteps"] == 1


def test_bfs_transient_mid_step_rolls_back(g, src):
    ref = _bfs_ref(g, src)
    plan = FaultPlan([FaultSpec(FaultKind.TRANSIENT_KERNEL, step=2,
                                site="filter")])  # advance already mutated
    r = bfs(g, src, machine=Machine(), checkpoint_every=2, faults=plan)
    assert np.array_equal(r.labels, ref.labels)
    assert r.recovery["rollbacks"] == 1
    assert r.recovery["restores"] == 1


def test_bfs_non_idempotent_transient_rolls_back(g, src):
    ref = bfs(g, src, machine=Machine(), idempotent=False)
    plan = FaultPlan([FaultSpec(FaultKind.TRANSIENT_KERNEL, step=2,
                                site="advance")])
    r = bfs(g, src, machine=Machine(), idempotent=False,
            checkpoint_every=1, faults=plan)
    assert np.array_equal(r.labels, ref.labels)
    assert r.recovery["rollbacks"] == 1


def test_bfs_corruption_rolls_back_to_clean_state(g, src):
    ref = _bfs_ref(g, src)
    plan = FaultPlan([FaultSpec(FaultKind.CORRUPTION, step=3)], seed=11)
    r = bfs(g, src, machine=Machine(), checkpoint_every=2, faults=plan)
    assert np.array_equal(r.labels, ref.labels)
    assert np.array_equal(r.preds, ref.preds)
    assert r.recovery["injected_by_kind"] == {"corruption": 1}
    assert r.recovery["rollbacks"] == 1


def test_bfs_straggler_costs_time_only(g, src):
    ref = _bfs_ref(g, src)
    plan = FaultPlan([FaultSpec(FaultKind.STRAGGLER, step=1,
                                magnitude=10.0)])
    r = bfs(g, src, machine=Machine(), faults=plan)
    assert np.array_equal(r.labels, ref.labels)
    assert r.elapsed_ms > ref.elapsed_ms
    assert r.recovery["faults_injected"] == 1


def test_bfs_checkpoint_costs_time(g, src):
    ref = _bfs_ref(g, src)
    r = bfs(g, src, machine=Machine(), checkpoint_every=1)
    assert np.array_equal(r.labels, ref.labels)
    assert r.elapsed_ms > ref.elapsed_ms
    assert r.recovery["checkpoints_taken"] >= ref.iterations


def test_sssp_rollback_restores_priority_queue(gw, src):
    ref = sssp(gw, src, machine=Machine())
    plan = FaultPlan([FaultSpec(FaultKind.TRANSIENT_KERNEL, step=2,
                                site="advance"),
                      FaultSpec(FaultKind.CORRUPTION, step=4)], seed=5)
    r = sssp(gw, src, machine=Machine(), checkpoint_every=2, faults=plan)
    assert np.array_equal(r.labels, ref.labels)
    assert np.array_equal(r.preds, ref.preds)
    assert r.recovery["rollbacks"] == 2
    assert r.recovery["faults_injected"] == 2


def test_pagerank_corruption_recovers(g):
    ref = pagerank(g, machine=Machine())
    plan = FaultPlan([FaultSpec(FaultKind.CORRUPTION, step=5)], seed=9)
    r = pagerank(g, machine=Machine(), checkpoint_every=3, faults=plan)
    assert np.array_equal(r.rank, ref.rank)
    assert r.recovery["rollbacks"] == 1


def test_retry_exhaustion_reraises(gw, src):
    plan = FaultPlan([FaultSpec(FaultKind.TRANSIENT_KERNEL, step=1,
                                site="advance", count=10)])
    with pytest.raises(TransientKernelFault):
        sssp(gw, src, machine=Machine(), checkpoint_every=1, faults=plan,
             retry=RetryPolicy(max_retries=2))


def test_fault_without_checkpoint_is_fatal(g, src):
    plan = FaultPlan([FaultSpec(FaultKind.CORRUPTION, step=2)])
    with pytest.raises(DataCorruptionFault):
        bfs(g, src, machine=Machine(), faults=plan)  # no checkpoint_every


def test_recovery_is_none_without_resilience(g, src):
    assert _bfs_ref(g, src).recovery is None


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    p = RetryPolicy(base_ms=2.0, multiplier=3.0)
    assert p.backoff_ms(0) == 2.0
    assert p.backoff_ms(2) == 18.0


def test_retry_backoff_cap_honored():
    p = RetryPolicy(base_ms=2.0, multiplier=3.0, max_backoff_ms=10.0)
    assert p.backoff_ms(0) == 2.0
    assert p.backoff_ms(1) == 6.0
    assert p.backoff_ms(2) == 10.0   # 18.0 clipped to the cap
    assert p.backoff_ms(9) == 10.0


def test_retry_backoff_monotone_under_cap():
    p = RetryPolicy(base_ms=1.0, multiplier=2.0, max_backoff_ms=5.0)
    delays = [p.backoff_ms(a) for a in range(8)]
    assert all(b >= a for a, b in zip(delays, delays[1:]))
    assert max(delays) == 5.0


def test_retry_backoff_cap_deterministic_and_validated():
    a = RetryPolicy(base_ms=1.5, multiplier=2.5, max_backoff_ms=7.0)
    b = RetryPolicy(base_ms=1.5, multiplier=2.5, max_backoff_ms=7.0)
    assert [a.backoff_ms(i) for i in range(6)] \
        == [b.backoff_ms(i) for i in range(6)]
    with pytest.raises(ValueError):
        RetryPolicy(max_backoff_ms=-1.0)


# -- multi-GPU recovery -------------------------------------------------------


def test_multi_bfs_device_loss_degrades_gracefully(g, src):
    ref = multi_gpu_bfs(g, src, k=4)
    plan = FaultPlan([FaultSpec(FaultKind.DEVICE_LOSS, step=2, device=1)])
    r = multi_gpu_bfs(g, src, k=4, faults=plan)
    assert np.array_equal(r.labels, ref.labels)
    assert r.recovery["devices_failed"] == [1]
    assert r.recovery["reshard_bytes"] > 0
    assert r.recovery["replayed_supersteps"] == 1
    # note: total elapsed may DROP after a loss (a 3-device all-to-all
    # sends fewer messages than 4), so only the re-shard cost is pinned
    assert r.recovery["reshard_ms"] > 0


def test_multi_bfs_survives_two_losses(g, src):
    ref = multi_gpu_bfs(g, src, k=4)
    plan = FaultPlan([FaultSpec(FaultKind.DEVICE_LOSS, step=2, device=1),
                      FaultSpec(FaultKind.DEVICE_LOSS, step=3, device=3)])
    r = multi_gpu_bfs(g, src, k=4, faults=plan)
    assert np.array_equal(r.labels, ref.labels)
    assert r.recovery["devices_failed"] == [1, 3]


def test_multi_bfs_exchange_timeout_retries(g, src):
    ref = multi_gpu_bfs(g, src, k=4)
    plan = FaultPlan([FaultSpec(FaultKind.EXCHANGE_TIMEOUT, step=2,
                                site="exchange", count=2)])
    r = multi_gpu_bfs(g, src, k=4, faults=plan)
    assert np.array_equal(r.labels, ref.labels)
    assert r.recovery["retry_attempts"] == 2
    assert r.recovery["backoff_ms"] > 0
    assert r.elapsed_ms > ref.elapsed_ms


def test_multi_bfs_exchange_exhaustion_raises(g, src):
    plan = FaultPlan([FaultSpec(FaultKind.EXCHANGE_TIMEOUT, step=1,
                                site="exchange", count=99)])
    with pytest.raises(ExchangeTimeout):
        multi_gpu_bfs(g, src, k=4, faults=plan,
                      retry=RetryPolicy(max_retries=2))


def test_multi_pagerank_device_loss_bitwise_identical(g):
    ref = multi_gpu_pagerank(g, k=4)
    plan = FaultPlan([FaultSpec(FaultKind.DEVICE_LOSS, step=3, device=2)])
    r = multi_gpu_pagerank(g, k=4, faults=plan)
    assert np.array_equal(r.rank, ref.rank)
    assert r.recovery["devices_failed"] == [2]


def test_multi_pagerank_rank_partition_independent(g):
    # the canonical-order commit makes ranks bitwise equal across k,
    # which is what makes post-redistribution replay exact
    assert np.array_equal(multi_gpu_pagerank(g, k=2).rank,
                          multi_gpu_pagerank(g, k=4).rank)


def test_redistribute_reassigns_only_dead_vertices(g):
    pg = partition_1d(g, 4)
    pg2 = redistribute(pg, 1, [0, 2, 3])
    moved = pg.owner != pg2.owner
    assert np.all(pg.owner[moved] == 1)
    assert pg2.parts[1].n_local == 0
    assert not np.any(pg2.owner == 1)
    assert sum(p.n_local for p in pg2.parts) == g.n
    assert sum(p.m_local for p in pg2.parts) == g.m


def test_redistribute_k2_to_single_survivor(g):
    pg = partition_1d(g, 2)
    pg2 = redistribute(pg, 0, [1])
    assert pg2.parts[0].n_local == 0
    assert np.all(pg2.owner == 1)
    assert pg2.parts[1].n_local == g.n
    assert pg2.parts[1].m_local == g.m


def test_redistribute_cascading_deaths_conserve_graph(g):
    # kill parts one at a time until a single survivor holds everything;
    # vertex and edge counts must be conserved at every stage
    pg = partition_1d(g, 4)
    alive = [0, 1, 2, 3]
    for dead in (2, 0, 3):
        alive.remove(dead)
        pg = redistribute(pg, dead, alive)
        assert sum(p.n_local for p in pg.parts) == g.n
        assert sum(p.m_local for p in pg.parts) == g.m
        assert pg.parts[dead].n_local == 0
        assert set(np.unique(pg.owner)) <= set(alive)
    assert alive == [1]
    assert pg.parts[1].n_local == g.n


def test_redistribute_cascade_keeps_slot_count(g):
    pg = partition_1d(g, 3)
    pg2 = redistribute(redistribute(pg, 1, [0, 2]), 2, [0])
    assert len(pg2.parts) == 3      # dead slots stay, empty
    assert pg2.k == pg.k
    assert np.all(pg2.owner == 0)


def test_redistribute_rejects_bad_args(g):
    pg = partition_1d(g, 2)
    with pytest.raises(ValueError):
        redistribute(pg, 0, [])
    with pytest.raises(ValueError):
        redistribute(pg, 0, [0, 1])


def test_last_device_loss_is_fatal(g, src):
    plan = FaultPlan([FaultSpec(FaultKind.DEVICE_LOSS, step=1, device=0),
                      FaultSpec(FaultKind.DEVICE_LOSS, step=1, device=1)])
    from repro.resilience import DeviceLost

    with pytest.raises(DeviceLost):
        multi_gpu_bfs(g, src, k=2, faults=plan)


# -- chaos harness ------------------------------------------------------------


def test_chaos_all_kinds_pass(g):
    report = run_chaos(g, "bfs", list(FaultKind), seed=0)
    assert report.ok
    names = [p.name for p in report.phases]
    assert names == ["single-gpu", "multi-gpu"]
    for p in report.phases:
        assert p.identical
        assert p.recovery["faults_injected"] > 0


def test_chaos_sssp_skips_multi_phase(g):
    report = run_chaos(g, "sssp", list(FaultKind), seed=1)
    assert report.ok
    multi = [p for p in report.phases if p.name == "multi-gpu"]
    assert multi and multi[0].skipped


def test_chaos_report_format(g):
    report = run_chaos(g, "bfs", [FaultKind.STRAGGLER], seed=0)
    text = format_report(report)
    assert "chaos: PASS" in text
    assert "straggler" in text


def test_chaos_rejects_unknown_primitive(g):
    with pytest.raises(ValueError, match="does not drive"):
        run_chaos(g, "bc", [FaultKind.STRAGGLER])


def test_chaos_cli_smoke(capsys):
    from repro.cli import main

    rc = main(["chaos", "--primitive", "bfs", "--generate", "kron:8",
               "--faults", "device-loss,exchange-timeout", "--seed", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "chaos: PASS" in out


def test_chaos_under_sanitizer(g, src):
    # recovery restores happen outside kernel scopes, so the race
    # detector must stay silent through a rollback
    from repro.analysis import sanitize

    plan = FaultPlan([FaultSpec(FaultKind.CORRUPTION, step=3)], seed=7)
    with sanitize(strict=True):
        r = bfs(g, src, machine=Machine(), checkpoint_every=2, faults=plan)
    assert r.recovery["rollbacks"] == 1


# -- determinism of the whole stack ------------------------------------------


def test_chaos_runs_are_reproducible(g):
    a = run_chaos(g, "bfs", list(FaultKind), seed=4)
    b = run_chaos(g, "bfs", list(FaultKind), seed=4)
    for pa, pb in zip(a.phases, b.phases):
        assert pa.plan.to_bytes() == pb.plan.to_bytes()
        assert pa.faulty_ms == pb.faulty_ms
        assert pa.recovery == pb.recovery
