"""Scheduler + service + workload: admission, deadlines, determinism."""

from __future__ import annotations

import pytest

from repro.resilience import RetryPolicy
from repro.serve import (DeadlineScheduler, GraphService, Overloaded, Request,
                         ServeReport, WorkloadSpec, build_workload,
                         run_serving, zipf_popularity)


def _service(graph):
    s = GraphService()
    s.load_graph(graph)
    return s


# -- admission control --------------------------------------------------------


def test_bounded_queue_sheds_with_typed_error(kron_graph):
    sched = DeadlineScheduler(_service(kron_graph), max_queue=2)
    for rid in range(2):
        assert sched.enqueue(
            Request(rid=rid, primitive="bfs", params={"src": rid}), 0.0) is None
    with pytest.raises(Overloaded) as exc:
        sched.enqueue(Request(rid=2, primitive="bfs", params={"src": 2}), 0.0)
    assert exc.value.rid == 2
    assert exc.value.queue_depth == 2
    assert exc.value.limit == 2


def test_unknown_primitive_rejected(kron_graph):
    sched = DeadlineScheduler(_service(kron_graph))
    with pytest.raises(ValueError, match="served primitives"):
        sched.enqueue(Request(rid=0, primitive="mst", params={}), 0.0)


def test_unknown_graph_rejected(kron_graph):
    sched = DeadlineScheduler(_service(kron_graph))
    with pytest.raises(KeyError):
        sched.enqueue(Request(rid=0, primitive="bfs", params={"src": 0},
                              graph="absent"), 0.0)


def test_scheduler_knob_validation(kron_graph):
    svc = _service(kron_graph)
    with pytest.raises(ValueError):
        DeadlineScheduler(svc, devices=0)
    with pytest.raises(ValueError):
        DeadlineScheduler(svc, max_queue=0)
    with pytest.raises(ValueError):
        DeadlineScheduler(svc, fault_rate=1.5)


# -- replay semantics ---------------------------------------------------------


def test_coinciding_arrivals_share_a_batch(kron_graph):
    sched = DeadlineScheduler(_service(kron_graph), batch_window_ms=1.0)
    reqs = [Request(rid=i, primitive="bfs", params={"src": i},
                    arrival_ms=0.0, deadline_ms=100.0) for i in range(3)]
    completions = sched.replay(reqs)
    ok = [c for c in completions if c.outcome == "ok"]
    assert len(ok) == 3
    assert all(c.batch_lanes == 3 for c in ok)


def test_duplicate_requests_one_executes_rest_hit_cache(kron_graph):
    sched = DeadlineScheduler(_service(kron_graph), batch_window_ms=1.0)
    reqs = [Request(rid=0, primitive="bfs", params={"src": 7},
                    arrival_ms=0.0, deadline_ms=100.0),
            Request(rid=1, primitive="bfs", params={"src": 7},
                    arrival_ms=50.0, deadline_ms=100.0)]
    completions = sched.replay(reqs)
    outcomes = {c.rid: c.outcome for c in completions}
    assert outcomes[0] == "ok"
    assert outcomes[1] == "cache_hit"


def test_expired_requests_are_dropped_not_run(kron_graph):
    sched = DeadlineScheduler(_service(kron_graph), batch_window_ms=5.0)
    reqs = [Request(rid=0, primitive="bfs", params={"src": 0},
                    arrival_ms=0.0, deadline_ms=1.0)]
    (done,) = sched.replay(reqs)
    assert done.outcome == "deadline_drop"
    assert not done.deadline_met
    assert sched.service.executed_batches == []


def test_edf_prefers_tighter_deadline(kron_graph):
    # one device, both groups ready at the same instant: the group whose
    # deadline is tighter must run first
    sched = DeadlineScheduler(_service(kron_graph), devices=1,
                              batch_window_ms=0.5)
    reqs = [Request(rid=0, primitive="ppr", params={"seeds": (3,)},
                    arrival_ms=0.0, deadline_ms=100.0),
            Request(rid=1, primitive="bfs", params={"src": 3},
                    arrival_ms=0.0, deadline_ms=5.0)]
    completions = {c.rid: c for c in sched.replay(reqs)}
    assert completions[1].finish_ms < completions[0].finish_ms


def test_multiple_devices_run_concurrently(kron_graph):
    reqs = [Request(rid=0, primitive="bfs", params={"src": 0},
                    arrival_ms=0.0, deadline_ms=100.0),
            Request(rid=1, primitive="sssp", params={"src": 0},
                    arrival_ms=0.0, deadline_ms=100.0)]
    sched = DeadlineScheduler(_service(kron_graph), devices=2,
                              batch_window_ms=0.1)
    done = {c.rid: c for c in sched.replay(reqs)}
    assert {done[0].device, done[1].device} == {0, 1}


def test_fault_injection_recovers_and_charges_backoff(kron_graph):
    spec = WorkloadSpec(requests=80, seed=5)
    report = run_serving(kron_graph, spec,
                         retry=RetryPolicy(max_retries=2, base_ms=3.0),
                         fault_rate=0.5)
    assert report.recovered_faults > 0
    assert report.retry_backoff_ms >= 3.0 * report.recovered_faults
    assert report.served + report.shed + report.deadline_drops == \
        report.requests


# -- workload generation ------------------------------------------------------


def test_zipf_popularity_is_a_distribution(kron_graph):
    p = zipf_popularity(kron_graph, 1.1)
    assert p.shape == (kron_graph.n,)
    assert abs(p.sum() - 1.0) < 1e-12
    hub = int(kron_graph.out_degrees.argmax())
    assert p[hub] == p.max()


def test_workload_is_seed_deterministic(kron_graph):
    spec = WorkloadSpec(requests=50, seed=21)
    w1 = build_workload(kron_graph, spec)
    w2 = build_workload(kron_graph, spec)
    for a, b in zip(w1.requests, w2.requests):
        assert (a.rid, a.primitive, a.params, a.arrival_ms) == \
            (b.rid, b.primitive, b.params, b.arrival_ms)


def test_workload_spec_validation(kron_graph):
    with pytest.raises(ValueError):
        WorkloadSpec(requests=0)
    with pytest.raises(ValueError):
        WorkloadSpec(mode="burst")
    with pytest.raises(ValueError):
        WorkloadSpec(mix={"mst": 1.0})


def test_closed_loop_respects_client_population(kron_graph):
    spec = WorkloadSpec(requests=40, seed=9, mode="closed", clients=4,
                        think_ms=0.2)
    report = run_serving(kron_graph, spec)
    assert report.requests == 40
    assert report.shed == 0  # closed loop self-paces: nothing sheds


# -- the report ---------------------------------------------------------------


def test_report_is_byte_identical_across_runs(kron_graph):
    spec = WorkloadSpec(requests=120, seed=7)
    r1 = run_serving(kron_graph, spec, devices=2)
    r2 = run_serving(kron_graph, spec, devices=2)
    assert r1.format() == r2.format()
    assert r1.as_dict() == r2.as_dict()


def test_report_accounts_for_every_request(kron_graph):
    spec = WorkloadSpec(requests=100, seed=3)
    r = run_serving(kron_graph, spec)
    assert r.requests == 100
    assert r.served + r.shed + r.deadline_drops == 100
    assert r.hit_rate > 0.0
    assert r.stale_hits == 0
    assert r.executed_batches == sum(
        c for hist in r.batch_histogram.values() for c in hist.values())


def test_overload_sheds_under_burst(kron_graph):
    spec = WorkloadSpec(requests=250, seed=3, arrival_rate_rps=50000.0)
    r = run_serving(kron_graph, spec, devices=1, max_queue=8)
    assert r.shed > 0
    assert r.served + r.shed + r.deadline_drops == 250


def test_batching_actually_happens(kron_graph):
    spec = WorkloadSpec(requests=200, seed=7)
    r = run_serving(kron_graph, spec)
    laned = [lanes for prim in ("bfs", "sssp", "ppr")
             for lanes in r.batch_histogram.get(prim, {})]
    assert any(lanes > 1 for lanes in laned)
    assert all(lanes == 1 for lanes in r.batch_histogram.get("wtf", {}))


def test_report_round_trips_outcomes(kron_graph):
    spec = WorkloadSpec(requests=60, seed=17)
    service = GraphService()
    service.load_graph(kron_graph)
    sched = DeadlineScheduler(service, seed=spec.seed)
    w = build_workload(kron_graph, spec)
    completions = sched.replay(w.initial_requests, updates=w.updates,
                               on_complete=w.driver)
    report = ServeReport.from_replay(completions, service)
    assert report.requests == len(completions) == 60
    d = report.as_dict()
    assert set(d["batch_histogram"]) == set(report.batch_histogram)
