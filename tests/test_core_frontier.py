"""Frontier data structure tests."""

import numpy as np
import pytest

from repro.core import Frontier, FrontierKind
from repro.simt import Machine


def test_from_vertex():
    f = Frontier.from_vertex(7)
    assert f.kind is FrontierKind.VERTEX
    assert f.items.tolist() == [7]
    assert len(f) == 1
    assert not f.is_empty


def test_all_vertices_and_edges():
    assert Frontier.all_vertices(4).items.tolist() == [0, 1, 2, 3]
    fe = Frontier.all_edges(3)
    assert fe.kind is FrontierKind.EDGE
    assert fe.items.tolist() == [0, 1, 2]


def test_empty():
    f = Frontier.empty("edge")
    assert f.is_empty
    assert f.kind is FrontierKind.EDGE


def test_kind_accepts_strings():
    f = Frontier(np.array([1]), "vertex")
    assert f.kind is FrontierKind.VERTEX


def test_rejects_2d_items():
    with pytest.raises(ValueError):
        Frontier(np.zeros((2, 2)))


def test_bitmap_roundtrip():
    f = Frontier(np.array([1, 4, 2]))
    bm = f.to_bitmap(6)
    assert bm.tolist() == [False, True, True, False, True, False]
    back = Frontier.from_bitmap(bm)
    assert sorted(back.items.tolist()) == [1, 2, 4]


def test_bitmap_rejects_overflow():
    f = Frontier(np.array([10]))
    with pytest.raises(ValueError):
        f.to_bitmap(5)


def test_bitmap_costs_kernel():
    m = Machine()
    Frontier(np.array([1, 2])).to_bitmap(10, m)
    assert m.counters.kernel_launches == 1


def test_deduplicated():
    f = Frontier(np.array([3, 1, 3, 3, 2]))
    d = f.deduplicated()
    assert sorted(d.items.tolist()) == [1, 2, 3]
    assert d.kind is f.kind


def test_copy_independent():
    f = Frontier(np.array([1, 2]))
    c = f.copy()
    c.items[0] = 99
    assert f.items[0] == 1


def test_size_property():
    assert Frontier(np.arange(5)).size == 5
