"""Extension primitives (Section 5.5's in-development list + Section 7):
coloring, MIS, MST, triangles, k-core, label propagation."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import generators, with_random_weights
from repro.graph.build import to_networkx
from repro import primitives as P
from repro.simt import Machine


@pytest.fixture(scope="module")
def g():
    return generators.kronecker(8, seed=7)


@pytest.fixture(scope="module")
def gw(g):
    return with_random_weights(g, seed=2)


@pytest.fixture(scope="module")
def und(g):
    return nx.Graph(to_networkx(g))


# -- coloring -------------------------------------------------------------------


def test_coloring_proper(g):
    r = P.color(g, seed=1)
    src, dst = g.edge_sources, g.indices
    assert (r.colors >= 0).all()
    assert (r.colors[src] != r.colors[dst]).all()


def test_coloring_bounded_by_max_degree_plus_one(g):
    r = P.color(g, seed=1)
    assert r.num_colors <= int(g.out_degrees.max()) + 1


def test_coloring_road(road_graph):
    r = P.color(road_graph, seed=3)
    src, dst = road_graph.edge_sources, road_graph.indices
    assert (r.colors[src] != r.colors[dst]).all()
    # grids are nearly bipartite: very few colors needed
    assert r.num_colors <= 8


def test_coloring_deterministic(g):
    assert np.array_equal(P.color(g, seed=5).colors, P.color(g, seed=5).colors)


def test_coloring_star():
    s = generators.star(20)
    r = P.color(s, seed=0)
    assert r.num_colors == 2


# -- maximal independent set ----------------------------------------------------------


def assert_valid_mis(g, in_set):
    src, dst = g.edge_sources, g.indices
    assert not (in_set[src] & in_set[dst]).any()  # independent
    for v in range(g.n):  # maximal
        if not in_set[v]:
            nb = g.neighbors(v)
            assert len(nb) > 0 and in_set[nb].any()


def test_mis_valid(g):
    r = P.mis(g, seed=1)
    assert_valid_mis(g, r.in_set)


def test_mis_valid_road(road_graph):
    r = P.mis(road_graph, seed=2)
    assert_valid_mis(road_graph, r.in_set)


def test_mis_isolated_vertices_join(tiny_graph):
    r = P.mis(tiny_graph, seed=0)
    assert r.in_set[5]  # isolated vertex must be in every MIS


def test_mis_logarithmic_rounds(g):
    r = P.mis(g, seed=1)
    assert r.iterations <= 4 * int(np.log2(g.n)) + 4


# -- minimum spanning tree ---------------------------------------------------------------


def test_mst_weight_matches_networkx(gw):
    r = P.mst(gw)
    ref = nx.minimum_spanning_tree(nx.Graph(to_networkx(gw)), weight="weight")
    refw = sum(d["weight"] for _, _, d in ref.edges(data=True))
    assert r.total_weight(gw) == pytest.approx(refw)


def test_mst_weight_road(road_weighted):
    r = P.mst(road_weighted)
    ref = nx.minimum_spanning_tree(nx.Graph(to_networkx(road_weighted)),
                                   weight="weight")
    refw = sum(d["weight"] for _, _, d in ref.edges(data=True))
    assert r.total_weight(road_weighted) == pytest.approx(refw)


def test_mst_forest_is_acyclic_and_spanning(gw):
    r = P.mst(gw)
    eids = np.flatnonzero(r.in_mst)
    src = gw.edge_sources[eids]
    dst = gw.indices[eids]
    f = nx.Graph()
    f.add_nodes_from(range(gw.n))
    f.add_edges_from(zip(src.tolist(), dst.tolist()))
    assert nx.is_forest(f)
    assert nx.number_connected_components(f) == \
        nx.number_connected_components(nx.Graph(to_networkx(gw)))


def test_mst_unit_weights_spanning_tree_size():
    g = generators.road_grid(10, 10, drop_prob=0.0, diag_prob=0.0, seed=1)
    r = P.mst(g)
    # connected graph, unit weights: any spanning tree has n-1 edges
    assert r.total_weight(g) == g.n - 1


# -- triangles ----------------------------------------------------------------------------


def test_triangle_count_matches_networkx(g, und):
    r = P.triangle_count(g)
    assert r.total == sum(nx.triangles(und).values()) // 3


def test_triangle_per_vertex(g, und):
    r = P.triangle_count(g)
    ref = nx.triangles(und)
    for v in range(g.n):
        assert r.per_vertex[v] == ref[v]


def test_triangle_count_complete():
    g = generators.complete(8)
    r = P.triangle_count(g)
    assert r.total == 8 * 7 * 6 // 6


def test_triangle_count_triangle_free():
    r = P.triangle_count(generators.path(20))
    assert r.total == 0


# -- k-core ---------------------------------------------------------------------------------


def test_kcore_matches_networkx(g, und):
    r = P.kcore(g)
    ref = nx.core_number(und)
    for v in range(g.n):
        assert r.core_numbers[v] == ref[v]


def test_kcore_road(road_graph):
    r = P.kcore(road_graph)
    ref = nx.core_number(nx.Graph(to_networkx(road_graph)))
    for v in range(road_graph.n):
        assert r.core_numbers[v] == ref[v]


def test_kcore_members_nested(g):
    r = P.kcore(g)
    prev = set(range(g.n))
    for k in range(1, r.max_core + 1):
        cur = set(r.core_members(k).tolist())
        assert cur <= prev
        prev = cur


# -- label propagation --------------------------------------------------------------------------


def test_label_prop_converges_on_disjoint_cliques():
    import numpy as np
    from repro.graph import from_edges

    edges = []
    for base in (0, 5):
        for i in range(5):
            for j in range(i + 1, 5):
                edges.append((base + i, base + j))
    g = from_edges(edges, n=10, undirected=True)
    r = P.label_propagation(g)
    assert r.num_communities == 2
    assert len(set(r.labels[:5].tolist())) == 1
    assert len(set(r.labels[5:].tolist())) == 1


def test_label_prop_respects_components(g):
    r = P.label_propagation(g, max_iterations=200)
    comp = P.cc(g).component_ids
    # labels never leak across components
    for lab in np.unique(r.labels):
        members = np.flatnonzero(r.labels == lab)
        assert len(np.unique(comp[members])) == 1


def test_label_prop_deterministic(g):
    a = P.label_propagation(g).labels
    b = P.label_propagation(g).labels
    assert np.array_equal(a, b)


# -- machine integration --------------------------------------------------------------------------


@pytest.mark.parametrize("fn", [
    lambda g, m: P.color(g, machine=m),
    lambda g, m: P.mis(g, machine=m),
    lambda g, m: P.mst(g, machine=m),
    lambda g, m: P.triangle_count(g, machine=m),
    lambda g, m: P.kcore(g, machine=m),
    lambda g, m: P.label_propagation(g, machine=m, max_iterations=20),
])
def test_extensions_charge_machine(g, fn):
    m = Machine()
    fn(g, m)
    assert m.counters.cycles > 0
    assert m.counters.kernel_launches > 0
