"""BC, PageRank, and CC correctness tests."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import generators
from repro.graph.build import to_networkx
from repro.primitives import bc, cc, pagerank
from repro.simt import Machine


# -- betweenness centrality ---------------------------------------------------


def brandes_reference(g, src):
    """Single-source Brandes dependency accumulation (directed paths)."""
    nxg = to_networkx(g)
    sigma = {v: 0.0 for v in nxg.nodes()}
    dist = {v: -1 for v in nxg.nodes()}
    sigma[src] = 1.0
    dist[src] = 0
    order = []
    queue = [src]
    while queue:
        nxt = []
        for u in queue:
            order.append(u)
        for u in queue:
            for v in nxg.successors(u):
                if dist[v] < 0:
                    dist[v] = dist[u] + 1
                    nxt.append(v)
        for u in queue:
            for v in nxg.successors(u):
                if dist[v] == dist[u] + 1:
                    sigma[v] += sigma[u]
        queue = sorted(set(nxt))
    delta = {v: 0.0 for v in nxg.nodes()}
    for u in reversed(order):
        for v in nxg.successors(u):
            if dist[v] == dist[u] + 1 and sigma[v] > 0:
                delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v])
    delta[src] = 0.0
    return sigma, delta


def test_bc_single_source_matches_reference(kron_graph):
    r = bc(kron_graph, 0)
    sigma_ref, delta_ref = brandes_reference(kron_graph, 0)
    for v in range(kron_graph.n):
        assert r.sigma[v] == pytest.approx(sigma_ref[v])
        assert r.bc_values[v] == pytest.approx(delta_ref[v])


def test_bc_all_sources_matches_networkx(tiny_graph):
    r = bc(tiny_graph, None)
    und = nx.Graph(to_networkx(tiny_graph))
    ref = nx.betweenness_centrality(und, normalized=False)
    # undirected convention: our directed accumulation counts each path
    # twice (once per endpoint ordering)
    for v in range(tiny_graph.n):
        assert r.bc_values[v] / 2.0 == pytest.approx(ref[v])


def test_bc_all_sources_matches_networkx_kron():
    g = generators.kronecker(7, seed=5)
    r = bc(g, None)
    und = nx.Graph(to_networkx(g))
    ref = nx.betweenness_centrality(und, normalized=False)
    for v in range(g.n):
        assert r.bc_values[v] / 2.0 == pytest.approx(ref[v], abs=1e-9)


def test_bc_multi_source_accumulates(kron_graph):
    r01 = bc(kron_graph, [0, 1])
    r0 = bc(kron_graph, 0)
    r1 = bc(kron_graph, 1)
    assert np.allclose(r01.bc_values, r0.bc_values + r1.bc_values)


def test_bc_normalize():
    g = generators.star(10)
    r = bc(g, None, normalize=True)
    # star center lies on all (n-1)(n-2) ordered pairs of leaves
    assert r.bc_values[0] == pytest.approx(1.0)


def test_bc_source_out_of_range(kron_graph):
    with pytest.raises(ValueError):
        bc(kron_graph, kron_graph.n)


def test_bc_path_graph():
    g = generators.path(5)  # 0-1-2-3-4
    r = bc(g, None)
    # middle vertex lies on 2*(2*3)/... check against networkx
    ref = nx.betweenness_centrality(nx.path_graph(5), normalized=False)
    for v in range(5):
        assert r.bc_values[v] / 2.0 == pytest.approx(ref[v])


def test_bc_uses_atomics(kron_graph):
    m = Machine()
    bc(kron_graph, 0, machine=m)
    assert m.counters.atomics_issued > 0


# -- pagerank ------------------------------------------------------------------


def test_pagerank_matches_networkx(kron_graph):
    r = pagerank(kron_graph, tolerance=1e-10)
    ref = nx.pagerank(to_networkx(kron_graph), alpha=0.85, tol=1e-12,
                      max_iter=1000)
    ours = r.normalized()
    for v in range(kron_graph.n):
        assert ours[v] == pytest.approx(ref[v], abs=1e-6)


def test_pagerank_road(road_graph):
    r = pagerank(road_graph, tolerance=1e-10)
    ref = nx.pagerank(to_networkx(road_graph), alpha=0.85, tol=1e-12,
                      max_iter=1000)
    ours = r.normalized()
    for v in range(road_graph.n):
        assert ours[v] == pytest.approx(ref[v], abs=1e-6)


def test_pagerank_ranks_hub_highest(hub_graph):
    r = pagerank(hub_graph)
    assert int(np.argmax(r.rank)) == 0


def test_pagerank_sum_close_to_one(road_graph):
    """Without dangling vertices, total rank is conserved at 1.  (Dangling
    vertices retain their mass rather than teleporting it, so graphs with
    isolated vertices sum below 1 — see the pagerank docstring.)"""
    assert (road_graph.out_degrees > 0).all()
    r = pagerank(road_graph, tolerance=1e-12)
    assert r.rank.sum() == pytest.approx(1.0, abs=1e-6)


def test_pagerank_dangling_mass_retained(tiny_graph):
    """An isolated vertex keeps its base rank; totals stay below 1."""
    r = pagerank(tiny_graph, tolerance=1e-12)
    n = tiny_graph.n
    assert r.rank[5] == pytest.approx((1 - 0.85) / n)
    assert r.rank.sum() < 1.0


def test_pagerank_single_iteration(kron_graph):
    r = pagerank(kron_graph, max_iterations=1)
    assert r.iterations == 1


def test_pagerank_tolerance_controls_iterations(kron_graph):
    loose = pagerank(kron_graph, tolerance=1e-3)
    tight = pagerank(kron_graph, tolerance=1e-9)
    assert tight.iterations > loose.iterations


def test_pagerank_damping_validation(kron_graph):
    with pytest.raises(ValueError):
        pagerank(kron_graph, damping=1.5)


def test_pagerank_frontier_shrinks(kron_graph):
    r = pagerank(kron_graph, tolerance=1e-8)
    trace = r.enactor_stats.trace
    sizes = [e.out_size for e in trace if e.op == "filter"]
    assert sizes[-1] < sizes[0]


def test_pagerank_deterministic(kron_graph):
    a = pagerank(kron_graph).rank
    b = pagerank(kron_graph).rank
    assert np.array_equal(a, b)


# -- connected components ---------------------------------------------------------


def scipy_components(g):
    import scipy.sparse as sp
    from scipy.sparse.csgraph import connected_components

    mat = sp.csr_matrix((np.ones(g.m, dtype=np.int8), g.indices, g.indptr),
                        shape=(g.n, g.n))
    return connected_components(mat, directed=True, connection="weak")


def assert_same_partition(g, ids):
    k, ref = scipy_components(g)
    assert len(np.unique(ids)) == k
    for comp in range(k):
        members = ids[ref == comp]
        assert len(np.unique(members)) == 1


@pytest.mark.parametrize("alternate", [False, True])
def test_cc_partition_kron(kron_graph, alternate):
    r = cc(kron_graph, alternate=alternate)
    assert_same_partition(kron_graph, r.component_ids)


def test_cc_partition_road(road_graph):
    r = cc(road_graph)
    assert_same_partition(road_graph, r.component_ids)


def test_cc_partition_hub(hub_graph):
    r = cc(hub_graph)
    assert_same_partition(hub_graph, r.component_ids)


def test_cc_labels_are_component_minima(kron_graph):
    """Monotonic min-hooking labels every component by its smallest id."""
    r = cc(kron_graph)
    ids = r.component_ids
    for root in np.unique(ids):
        members = np.flatnonzero(ids == root)
        assert members.min() == root


def test_cc_isolated_vertices(tiny_graph):
    r = cc(tiny_graph)
    assert r.component_ids[5] == 5  # isolated vertex is its own component
    assert r.num_components == 2


def test_cc_empty_graph():
    from repro.graph import from_edges

    g = from_edges([], n=4)
    r = cc(g)
    assert r.num_components == 4


def test_cc_monotone_converges_faster_than_alternating(kron_graph):
    """Both schedules compute the same partition (labels may differ: the
    alternating schedule can root a component at a non-minimal id), but
    the monotone default avoids the star-thrash pathology."""
    fast = cc(kron_graph)
    slow = cc(kron_graph, alternate=True)
    assert fast.iterations < slow.iterations
    assert_same_partition(kron_graph, slow.component_ids)
    # same partition: identical grouping under both labelings
    remap = {}
    for a, b in zip(fast.component_ids.tolist(), slow.component_ids.tolist()):
        assert remap.setdefault(a, b) == b


def test_cc_deterministic(kron_graph):
    assert np.array_equal(cc(kron_graph).component_ids,
                          cc(kron_graph).component_ids)


# -- gather-reduce PageRank (Section 7) ----------------------------------------


def test_pagerank_gather_matches_scatter(kron_graph):
    from repro.primitives import pagerank_gather

    a = pagerank(kron_graph, tolerance=1e-10)
    b = pagerank_gather(kron_graph, tolerance=1e-10)
    # same fixpoint within the truncation tolerance: the scatter variant
    # drops sub-tolerance residuals (its frontier shrinks), the gather
    # variant keeps collecting them
    assert np.allclose(a.rank, b.rank, rtol=1e-4, atol=1e-6)


def test_pagerank_gather_matches_networkx(kron_graph):
    from repro.primitives import pagerank_gather

    r = pagerank_gather(kron_graph, tolerance=1e-10)
    ref = nx.pagerank(to_networkx(kron_graph), alpha=0.85, tol=1e-12,
                      max_iter=1000)
    total = r.rank.sum()
    for v in range(kron_graph.n):
        assert r.rank[v] / total == pytest.approx(ref[v], abs=1e-6)


def test_pagerank_gather_is_atomics_free(kron_graph):
    from repro.primitives import pagerank_gather

    m = Machine()
    pagerank_gather(kron_graph, machine=m, max_iterations=5)
    assert m.counters.atomics_issued == 0
    m2 = Machine()
    pagerank(kron_graph, machine=m2, max_iterations=5)
    assert m2.counters.atomics_issued > 0
