"""Serving-tier integration tests for streaming graph mutations.

What the delta path must preserve end to end:

* every cache entry alive after an incremental replay is **bitwise
  correct** against a from-scratch run on the final compacted graph
  (repairs commit real answers, never stale approximations);
* the whole replay is seed-deterministic — same spec, byte-identical
  report — with structural updates and background repair in the mix;
* weight-only updates carry weight-insensitive entries across the
  version bump and never rebuild the sharded tier's vertex ownership.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamic import DeltaCsr, GraphUpdate
from repro.dynamic.incremental import pagerank_defect
from repro.primitives import bfs, sssp
from repro.serve import (BreakerPolicy, DeadlineScheduler, GraphService,
                         ShardTier, ShardedGraphService, WorkloadSpec,
                         build_workload, run_serving, run_sharded_serving)
from repro.serve.service import key_primitive


def _spec(**kw) -> WorkloadSpec:
    base = dict(requests=150, seed=11, updates=3, update_interval_ms=8.0,
                update_kind="edges", delta_frac=0.01)
    base.update(kw)
    return WorkloadSpec(**base)


# -- repair-commit correctness --------------------------------------------

def _check_entry(csr, qkey, payload) -> None:
    prim = key_primitive(qkey)
    params = dict(qkey[1:]) if isinstance(qkey[0], str) else dict(qkey[2:])
    if prim == "bfs":
        ref = bfs(csr, params["src"], idempotent=False, direction="push")
        assert np.array_equal(payload.arrays["labels"], ref.arrays["labels"])
        _check_preds(csr, payload.arrays["labels"],
                     payload.arrays["preds"], params["src"], unit=True)
    elif prim == "sssp":
        ref = sssp(csr, params["src"], use_priority_queue=False)
        assert np.array_equal(payload.arrays["labels"], ref.arrays["labels"])
        _check_preds(csr, payload.arrays["labels"],
                     payload.arrays["preds"], params["src"], unit=False)
    elif prim == "pagerank":
        tol = 0.01 / csr.n
        defect = float(np.abs(pagerank_defect(csr, payload.arrays["rank"])).sum())
        assert defect <= 3.0 * csr.n * tol
    # ppr/wtf are never repaired; they are invalidated on structural
    # updates, so any surviving entry was computed on the final graph


def _check_preds(csr, labels, preds, src, *, unit: bool) -> None:
    """Support oracle: every reached non-source vertex's pred is an
    in-neighbour that exactly supports its label (preds are lane-order
    dependent, so bitwise comparison against a solo run is not the
    contract)."""
    csc = csr.csc
    for v in range(csr.n):
        reach = labels[v] >= 0 if unit else np.isfinite(labels[v])
        if not reach or v == src:
            continue
        p = int(preds[v])
        lo, hi = int(csc.indptr[v]), int(csc.indptr[v + 1])
        hit = csc.indices[lo:hi] == p
        assert hit.any(), f"pred {p} of {v} is not an in-neighbor"
        if unit:
            assert labels[p] == labels[v] - 1
        else:
            w = csc.artifacts.weights64[lo:hi][hit]
            assert (labels[p] + w == labels[v]).any()


def test_repaired_cache_entries_match_from_scratch(kron_weighted):
    service = GraphService()
    service.load_graph(kron_weighted)
    scheduler = DeadlineScheduler(service, devices=2, seed=11,
                                  incremental=True)
    workload = build_workload(kron_weighted, _spec())
    scheduler.replay(workload.initial_requests, updates=workload.updates,
                     on_complete=workload.driver)

    summary = scheduler.dynamic_summary()
    assert summary["updates"] == 3
    assert summary["updates_incremental"] == 3
    assert summary["pending_repairs"] == 0
    assert summary["repairs_incremental"] > 0

    vg = service.graph_version("default")
    assert vg.delta is not None and vg.delta.snapshot() is vg.csr
    entries = service.cache.entries_for("default", vg.version)
    assert entries, "expected warm entries at the final version"
    checked = 0
    for qkey, payload in entries:
        _check_entry(vg.csr, qkey, payload)
        checked += 1
    assert checked == len(entries)


def test_sharded_repairs_commit_correct_entries(kron_weighted):
    report = run_sharded_serving(kron_weighted, _spec(requests=120),
                                 shards=4, replicas=2, incremental=True)
    dyn = report.dynamic
    assert dyn["updates"] == 3
    assert dyn["updates_incremental"] == 3
    assert dyn["repairs_incremental"] + dyn["repair_fallbacks"] > 0
    assert report.stale_hits == 0


# -- determinism ----------------------------------------------------------

def test_incremental_serving_is_deterministic(kron_weighted):
    spec = _spec()
    r1 = run_serving(kron_weighted, spec, devices=2, incremental=True)
    r2 = run_serving(kron_weighted, spec, devices=2, incremental=True)
    assert r1.as_dict() == r2.as_dict()
    assert r1.dynamic["updates"] == 3
    assert r1.stale_hits == 0


def test_sharded_incremental_is_deterministic(kron_weighted):
    spec = _spec(requests=120)
    r1 = run_sharded_serving(kron_weighted, spec, shards=4, replicas=2,
                             incremental=True)
    r2 = run_sharded_serving(kron_weighted, spec, shards=4, replicas=2,
                             incremental=True)
    assert r1.as_dict() == r2.as_dict()


# -- workload structural deltas -------------------------------------------

def test_workload_edge_updates_deterministic_and_chained(kron_weighted):
    spec = _spec(requests=20)
    w1 = build_workload(kron_weighted, spec)
    w2 = build_workload(kron_weighted, spec)
    assert len(w1.updates) == 3
    chain = DeltaCsr(kron_weighted)
    for (at1, name1, u1), (at2, name2, u2) in zip(w1.updates, w2.updates):
        assert at1 == at2 and name1 == name2
        assert isinstance(u1, GraphUpdate) and u1.batch is not None
        assert u1.batch.structural
        assert u1.batch.size == u2.batch.size
        assert np.array_equal(u1.csr.indptr, u2.csr.indptr)
        assert np.array_equal(u1.csr.indices, u2.csr.indices)
        # each shipped snapshot is exactly the chained application of
        # its batch on top of the previous snapshot
        chain.apply(u1.batch)
        snap = chain.snapshot()
        assert np.array_equal(snap.indptr, u1.csr.indptr)
        assert np.array_equal(snap.indices, u1.csr.indices)
        assert np.allclose(snap.weight_or_ones(), u1.csr.weight_or_ones())
        chain.maybe_compact()


def test_workload_spec_rejects_bad_update_kind(kron_weighted):
    with pytest.raises(ValueError):
        WorkloadSpec(update_kind="vertices")
    with pytest.raises(ValueError):
        WorkloadSpec(delta_frac=0.0)


# -- weight-only updates: carry + shard-map retention ---------------------

def test_weight_updates_carry_insensitive_entries(kron_weighted):
    spec = _spec(update_kind="weights", requests=200)
    report = run_serving(kron_weighted, spec, devices=2, incremental=True)
    assert report.dynamic["updates"] == 3
    assert report.dynamic["cache_carried"] > 0
    assert report.stale_hits == 0


def test_sharded_weight_only_update_keeps_shard_map(kron_weighted):
    from repro.dynamic.delta import MutationBatch, random_mutation_batch
    from repro.graph import with_random_weights

    tier = ShardTier(4, 2, breaker=BreakerPolicy())
    svc = ShardedGraphService(tier)
    svc.load_graph(kron_weighted)
    m0 = svc.maps["default"]

    fresh = with_random_weights(kron_weighted, seed=99)
    wbatch = MutationBatch(all_weights=np.asarray(fresh.edge_values,
                                                  dtype=np.float64))
    svc.update_graph(fresh, batch=wbatch)
    assert svc.maps["default"] is m0, "weight-only update rebuilt the map"

    sbatch = random_mutation_batch(svc.graphs["default"].csr, seed=5,
                                   frac=0.01)
    svc.update_graph(batch=sbatch, incremental=True)
    assert svc.maps["default"] is not m0, "structural update kept stale map"
