"""Workspace arena unit tests: scratch pooling, constant views, bitmap
sparse-clear, expansion memo, pooling switch."""

import numpy as np
import pytest

from repro.core.workspace import (Workspace, pooling, pooling_enabled,
                                  set_pooling, workspace_of)


# -- take: pooled scratch ---------------------------------------------------


def test_take_returns_exact_size_view():
    ws = Workspace(pooled=True)
    a = ws.take("x", 10)
    assert len(a) == 10
    assert a.dtype == np.int64


def test_take_reuses_backing_for_same_role():
    ws = Workspace(pooled=True)
    a = ws.take("x", 10)
    b = ws.take("x", 10)
    assert a.base is b.base
    assert ws.stats["allocations"] == 1


def test_take_grows_geometrically():
    ws = Workspace(pooled=True)
    ws.take("x", 10)
    ws.take("x", 5000)   # grows
    ws.take("x", 3000)   # fits in grown backing
    assert ws.stats["allocations"] == 2


def test_take_roles_are_independent():
    ws = Workspace(pooled=True)
    a = ws.take("a", 8)
    b = ws.take("b", 8)
    a[:] = 1
    b[:] = 2
    assert a.sum() == 8 and b.sum() == 16


def test_take_dtypes_are_independent():
    ws = Workspace(pooled=True)
    a = ws.take("x", 8, np.int64)
    b = ws.take("x", 8, np.bool_)
    assert a.dtype == np.int64 and b.dtype == np.bool_


def test_take_fill():
    ws = Workspace(pooled=True)
    a = ws.take("x", 6, np.int64, fill=7)
    assert a.tolist() == [7] * 6


def test_take_unpooled_allocates_fresh():
    ws = Workspace(pooled=False)
    a = ws.take("x", 10)
    b = ws.take("x", 10)
    assert a.base is None and b.base is None
    a[:] = 1
    assert b is not a


# -- constant views ---------------------------------------------------------


def test_iota_values_and_readonly():
    ws = Workspace(pooled=True)
    r = ws.iota(10)
    assert np.array_equal(r, np.arange(10))
    with pytest.raises(ValueError):
        r[0] = 5


def test_true_false_masks_identity():
    ws = Workspace(pooled=True)
    t = ws.true_mask(9)
    f = ws.false_mask(9)
    assert t.all() and not f.any()
    assert ws.is_true_view(t) and ws.is_false_view(f)
    assert not ws.is_true_view(np.ones(9, dtype=bool))
    assert not ws.is_false_view(np.zeros(9, dtype=bool))
    # stable across calls (identity is how operators skip scans)
    assert ws.true_mask(9) is t


def test_masks_readonly():
    ws = Workspace(pooled=True)
    with pytest.raises(ValueError):
        ws.true_mask(4)[0] = False


def test_unpooled_constants_are_fresh_and_writable():
    ws = Workspace(pooled=False)
    t = ws.true_mask(4)
    t[0] = False  # legacy behavior: plain owned array
    assert not ws.is_true_view(ws.true_mask(4))


# -- bitmap scatter ---------------------------------------------------------


def test_bitmap_scatter_sets_exactly_items():
    ws = Workspace(pooled=True)
    bm = ws.bitmap_scatter("f", 16, np.array([1, 5, 9]))
    assert np.flatnonzero(bm).tolist() == [1, 5, 9]


def test_bitmap_scatter_sparse_clear_between_calls():
    ws = Workspace(pooled=True)
    ws.bitmap_scatter("f", 16, np.array([1, 5, 9]))
    bm = ws.bitmap_scatter("f", 16, np.array([2, 3]))
    assert np.flatnonzero(bm).tolist() == [2, 3]


def test_bitmap_scatter_rejects_out_of_range():
    ws = Workspace(pooled=True)
    with pytest.raises(ValueError):
        ws.bitmap_scatter("f", 4, np.array([4]))


# -- expansion memo ---------------------------------------------------------


def test_expansion_memo_roundtrip():
    ws = Workspace(pooled=True)
    g = object()
    f = np.array([1, 2, 3], dtype=np.int64)
    out = ("srcs", "dsts", "eids", "degs")
    ws.remember_expansion(g, f, out)
    assert ws.expansion_memo(g, f) is out
    assert ws.expansion_memo(g, f.copy()) is out  # element-wise match
    assert ws.expansion_memo(g, np.array([1, 2, 4])) is None
    assert ws.expansion_memo(object(), f) is None  # other graph


# -- stats / maintenance ----------------------------------------------------


def test_nbytes_and_clear():
    ws = Workspace(pooled=True)
    ws.take("x", 100)
    ws.iota(100)
    ws.true_mask(100)
    ws.bitmap_scatter("f", 100, np.array([3]))
    assert ws.nbytes() > 0
    ws.clear()
    assert ws.nbytes() == 0


# -- pooling switch ---------------------------------------------------------


def test_pooling_context_restores():
    before = pooling_enabled()
    with pooling(not before):
        assert pooling_enabled() is (not before)
        ws = Workspace()
        assert ws.pooled is (not before)
    assert pooling_enabled() is before


def test_set_pooling_returns_previous():
    before = pooling_enabled()
    try:
        assert set_pooling(False) is before
        assert pooling_enabled() is False
    finally:
        set_pooling(before)


def test_workspace_captures_mode_at_construction():
    with pooling(False):
        ws = Workspace()
    assert ws.pooled is False
    with pooling(True):
        assert ws.pooled is False  # captured, not live


def test_workspace_of_fallback_is_unpooled():
    class Bare:
        pass

    ws = workspace_of(Bare())
    assert isinstance(ws, Workspace)
    assert not ws.pooled
