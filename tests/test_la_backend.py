"""The linear-algebra backend: semiring products against dense numpy
oracles, LA-vs-pooled equivalence through the shared differential
harness (push/pull forcing, edge cases), the fallback contract, the
SpGEMM triangle workload, and LA observability.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from engines import run_all_engines
from repro.core.engine import clear_fallbacks, engine, last_fallback
from repro.graph import from_edges
from repro.graph.build import with_random_weights
from repro.la import (BOOL_OR_AND, MIN_PLUS, MIN_SELECT, PLUS_TIMES,
                      SEMIRING_OF, SEMIRINGS, spmspv, spmv)
from repro.simt import Machine


@st.composite
def edge_lists(draw, max_n=24, max_m=90):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=m, max_size=m))
    return n, edges


def _graph(n, edges):
    return from_edges(edges, n=n, undirected=True)


# -- semiring products vs dense oracles ---------------------------------------


def _edge_iter(g):
    src = g.edge_sources
    for e in range(g.m):
        yield int(src[e]), int(g.indices[e]), e


@given(edge_lists(max_n=16, max_m=60), st.integers(0, 2**16),
       st.data())
@settings(max_examples=25, deadline=None)
def test_spmspv_min_plus_matches_dense_oracle(data, wseed, draw):
    n, edges = data
    g = with_random_weights(_graph(n, edges), seed=wseed)
    w = g.artifacts.weights64
    k = draw.draw(st.integers(1, n))
    x_ids = np.array(sorted(draw.draw(
        st.sets(st.integers(0, n - 1), min_size=k, max_size=k))),
        dtype=np.int64)
    x_vals = np.array(draw.draw(st.lists(
        st.floats(0, 100, allow_nan=False), min_size=len(x_ids),
        max_size=len(x_ids))))
    ids, vals, wit = spmspv(g, x_ids, x_vals, MIN_PLUS, edge_values=w,
                            witness=True)
    xd = dict(zip(x_ids.tolist(), x_vals.tolist()))
    best, owner = {}, {}
    for u, v, e in _edge_iter(g):
        if u in xd:
            cand = xd[u] + w[e]
            if v not in best or cand < best[v]:
                best[v], owner[v] = cand, u
            elif cand == best[v]:
                owner[v] = min(owner[v], u)
    assert ids.tolist() == sorted(best)
    for i, v in enumerate(ids.tolist()):
        assert vals[i] == best[v]
        assert wit[i] == owner[v]


@given(edge_lists(max_n=16, max_m=60), st.data())
@settings(max_examples=25, deadline=None)
def test_spmspv_bool_with_complement_mask(data, draw):
    n, edges = data
    g = _graph(n, edges)
    x_ids = np.array(sorted(draw.draw(
        st.sets(st.integers(0, n - 1), min_size=1, max_size=n))),
        dtype=np.int64)
    mask = np.array(draw.draw(st.lists(
        st.booleans(), min_size=n, max_size=n)))
    ids, vals = spmspv(g, x_ids, np.ones(len(x_ids), dtype=bool),
                       BOOL_OR_AND, mask=mask, mask_complement=True)
    fs = set(x_ids.tolist())
    expect = sorted({v for u, v, _ in _edge_iter(g)
                     if u in fs and not mask[v]})
    assert ids.tolist() == expect
    assert vals.dtype == np.bool_ and bool(vals.all())


@given(edge_lists(max_n=16, max_m=60), st.data())
@settings(max_examples=25, deadline=None)
def test_spmv_bool_pull_matches_push(data, draw):
    """Pull (masked SpMV over the CSC) and push (SpMSpV) agree — the
    direction-optimization equivalence the BFS runner relies on."""
    n, edges = data
    g = _graph(n, edges)
    x_ids = np.array(sorted(draw.draw(
        st.sets(st.integers(0, n - 1), min_size=1, max_size=n))),
        dtype=np.int64)
    mask = np.array(draw.draw(st.lists(
        st.booleans(), min_size=n, max_size=n)))
    dense_x = np.zeros(n, dtype=bool)
    dense_x[x_ids] = True
    y, wit = spmv(g, dense_x, BOOL_OR_AND, mask=mask,
                  mask_complement=True, witness=True)
    ids, _, wit_push = spmspv(g, x_ids, np.ones(len(x_ids), dtype=bool),
                              BOOL_OR_AND, mask=mask, mask_complement=True,
                              witness=True)
    assert np.flatnonzero(y).tolist() == ids.tolist()
    assert wit[ids].tolist() == wit_push.tolist()


@given(edge_lists(max_n=14, max_m=50), st.data())
@settings(max_examples=20, deadline=None)
def test_spmspv_plus_times_matches_dense_oracle(data, draw):
    n, edges = data
    g = _graph(n, edges)
    x_vals = np.array(draw.draw(st.lists(
        st.floats(0, 10, allow_nan=False), min_size=n, max_size=n)))
    ids, vals = spmspv(g, np.arange(n, dtype=np.int64), x_vals, PLUS_TIMES)
    y = np.zeros(n)
    for u, v, _ in _edge_iter(g):
        y[v] += x_vals[u]
    assert ids.tolist() == sorted(np.flatnonzero(
        g.csc.degrees_of(np.arange(n)) > 0).tolist())
    assert np.allclose(vals, y[ids], rtol=1e-12, atol=0)


@given(edge_lists(max_n=14, max_m=50))
@settings(max_examples=20, deadline=None)
def test_spmspv_min_select_matches_dense_oracle(data):
    n, edges = data
    g = _graph(n, edges)
    labels = np.arange(n, dtype=np.int64)[::-1].copy()
    ids, vals = spmspv(g, np.arange(n, dtype=np.int64), labels, MIN_SELECT)
    best = {}
    for u, v, _ in _edge_iter(g):
        best[v] = min(best.get(v, np.iinfo(np.int64).max), labels[u])
    assert ids.tolist() == sorted(best)
    assert [int(x) for x in vals] == [best[v] for v in ids.tolist()]


def test_spmspv_empty_frontier_and_witness_rejection():
    g = _graph(3, [(0, 1)])
    ids, vals = spmspv(g, np.zeros(0, dtype=np.int64), np.zeros(0),
                       MIN_PLUS)
    assert len(ids) == 0 and len(vals) == 0
    with pytest.raises(ValueError):
        spmspv(g, np.array([0]), np.array([1.0]), PLUS_TIMES, witness=True)


def test_semiring_registry_covers_primitives():
    assert set(SEMIRINGS) == {"min_plus", "bool_or_and", "plus_times",
                              "min_select"}
    assert SEMIRING_OF["bfs"].name == "bool_or_and"
    assert SEMIRING_OF["sssp"].name == "min_plus"
    assert SEMIRING_OF["pagerank"].name == "plus_times"
    assert SEMIRING_OF["ppr"].name == "plus_times"
    assert SEMIRING_OF["cc"].name == "min_select"
    assert SEMIRING_OF["triangles"].name == "plus_times"


# -- LA vs the operator engines (shared harness) ------------------------------


@given(edge_lists(), st.integers(0, 23),
       st.sampled_from(["auto", "push", "pull"]), st.booleans())
@settings(max_examples=25, deadline=None)
def test_bfs_la_identity_with_direction_forcing(data, src, direction,
                                                idempotent):
    n, edges = data
    run_all_engines("bfs", _graph(n, edges),
                    engines=("pooled", "la"), src=src % n,
                    direction=direction, idempotent=idempotent,
                    record_preds=True)


@given(edge_lists(), st.integers(0, 23), st.integers(0, 2**32))
@settings(max_examples=25, deadline=None)
def test_sssp_la_identity(data, src, wseed):
    n, edges = data
    g = with_random_weights(_graph(n, edges), seed=wseed)
    run_all_engines("sssp", g, engines=("pooled", "la"), src=src % n)


@given(edge_lists(), st.integers(1, 40))
@settings(max_examples=20, deadline=None)
def test_pagerank_la_identity(data, iterations):
    n, edges = data
    run_all_engines("pagerank", _graph(n, edges),
                    engines=("pooled", "la"), max_iterations=iterations)


@given(edge_lists(), st.lists(st.integers(0, 23), min_size=1, max_size=4))
@settings(max_examples=20, deadline=None)
def test_ppr_la_identity(data, seeds):
    n, edges = data
    run_all_engines("ppr", _graph(n, edges), engines=("pooled", "la"),
                    seeds=[s % n for s in seeds], max_iterations=40)


@given(edge_lists())
@settings(max_examples=20, deadline=None)
def test_cc_la_identity(data):
    n, edges = data
    run_all_engines("cc", _graph(n, edges), engines=("pooled", "la"))


def test_single_vertex_and_empty_frontier_edges():
    g = _graph(1, [])
    run_all_engines("bfs", g, engines=("pooled", "la"), src=0)
    run_all_engines("sssp", with_random_weights(g, seed=0),
                    engines=("pooled", "la"), src=0)
    run_all_engines("cc", g, engines=("pooled", "la"))
    run_all_engines("pagerank", g, engines=("pooled", "la"),
                    max_iterations=10)
    # isolated source: the very first advance sees an empty product
    iso = _graph(4, [(1, 2)])
    run_all_engines("bfs", iso, engines=("pooled", "la"), src=0)
    run_all_engines("ppr", iso, engines=("pooled", "la"), seeds=[0, 3],
                    max_iterations=10)


# -- fallback contract --------------------------------------------------------


def _line_graph():
    return from_edges([(i, i + 1) for i in range(16)], n=17,
                      undirected=True)


def test_unlowered_primitive_falls_back_with_reason():
    from repro.primitives import mis

    g = _line_graph()
    clear_fallbacks()
    with engine("la"):
        r = mis(g, machine=Machine())
    prim, reason = last_fallback()
    assert prim == "mis"
    assert "no linear-algebra lowering" in reason
    assert r.set_size > 0


def test_alternating_cc_falls_back_under_la():
    from repro.primitives import cc

    g = _line_graph()
    clear_fallbacks()
    with engine("la"):
        r = cc(g, machine=Machine(), alternate=True)
    prim, reason = last_fallback()
    assert prim == "cc"
    assert "alternating" in reason
    assert r.num_components == 1


def test_iteration_capped_sssp_falls_back_under_la():
    from repro.primitives import sssp

    g = with_random_weights(_line_graph(), seed=3)
    clear_fallbacks()
    with engine("la"):
        r = sssp(g, 0, machine=Machine(), max_iterations=2)
    prim, reason = last_fallback()
    assert prim == "sssp"
    assert "schedule-dependent" in reason
    assert r.iterations <= 2


def test_sanitizer_disables_la():
    from repro.analysis import sanitize
    from repro.primitives import bfs

    g = _line_graph()
    clear_fallbacks()
    with engine("la"), sanitize(strict=True):
        bfs(g, 0, machine=Machine())
    prim, reason = last_fallback()
    assert prim == "bfs"
    assert "sanitiz" in reason


def test_resilience_hooks_disable_la():
    from repro.primitives import bfs

    g = _line_graph()
    clear_fallbacks()
    with engine("la"):
        r = bfs(g, 0, machine=Machine(), checkpoint_every=2)
    prim, reason = last_fallback()
    assert prim == "bfs"
    assert "resilience" in reason
    assert int(r.labels[16]) == 16


def test_la_engine_implies_pooling():
    from repro.core.workspace import pooling_enabled

    with engine("la"):
        assert pooling_enabled()


# -- SpGEMM triangle counting -------------------------------------------------


@given(edge_lists(max_n=18, max_m=70))
@settings(max_examples=25, deadline=None)
def test_triangles_spgemm_matches_operator_and_reference(data):
    pytest.importorskip("scipy")
    from repro import reference
    from repro.primitives import triangle_count

    n, edges = data
    # the SpGEMM parity contract covers simple graphs: dedup, no loops
    simple = sorted({(min(u, v), max(u, v)) for u, v in edges if u != v})
    g = from_edges(simple, n=n, undirected=True)
    rp = triangle_count(g, machine=Machine())
    clear_fallbacks()
    with engine("la"):
        rl = triangle_count(g, machine=Machine())
    assert last_fallback() is None
    assert rl.total == rp.total == reference.triangle_count(g)
    assert rl.per_vertex.dtype == rp.per_vertex.dtype
    assert np.array_equal(rl.per_vertex, rp.per_vertex)
    assert rl.total * 3 == int(rl.per_vertex.sum())


def test_triangles_la_charges_spgemm_kernels():
    pytest.importorskip("scipy")
    from repro.primitives import triangle_count

    g = from_edges([(0, 1), (1, 2), (0, 2), (2, 3)], n=4, undirected=True)
    m = Machine()
    with engine("la"):
        r = triangle_count(g, machine=m)
    assert r.total == 1
    names = {k.name for k in m.counters.kernels}
    assert "la_spgemm[plus_times]" in names


# -- observability ------------------------------------------------------------


def test_la_span_and_dispatch_counter():
    from repro.obs import observe
    from repro.obs.spans import CAT_LA
    from repro.primitives import bfs, mis

    g = _line_graph()
    with observe() as ob, engine("la"):
        bfs(g, 0, machine=Machine())
        mis(g, machine=Machine())  # falls back
    la_spans = [s for s in ob.tracer.spans if s.cat == CAT_LA]
    assert len(la_spans) == 1
    assert la_spans[0].args["primitive"] == "bfs"
    assert la_spans[0].args["semiring"] == "bool_or_and"
    assert la_spans[0].args["iterations"] >= 1
    counts = ob.metrics.as_dict()
    assert counts[
        'repro_la_dispatch_total{engine="la",primitive="bfs"}'] == 1.0
    assert counts[
        'repro_la_dispatch_total{engine="pooled",primitive="mis"}'] == 1.0


def test_la_kernels_are_semiring_products():
    from repro.primitives import bfs, sssp

    g = with_random_weights(_line_graph(), seed=5)
    with engine("la"):
        mb, ms = Machine(), Machine()
        bfs(g, 0, machine=mb)
        sssp(g, 0, machine=ms)
    bfs_names = {k.name for k in mb.counters.kernels}
    assert any(n.startswith("la_spm") for n in bfs_names)
    assert {k.name for k in ms.counters.kernels} >= {
        "la_spmspv[min_plus]", "la_mask_commit"}
