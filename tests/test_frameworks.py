"""Comparator frameworks: every supported primitive must agree with the
Gunrock primitives (same answers), and the cost models must reproduce the
paper's qualitative orderings."""

import numpy as np
import pytest

from repro.frameworks import (ALL_FRAMEWORKS, BglFramework, GunrockFramework,
                              HardwiredFramework, LigraFramework,
                              MapGraphFramework, MedusaFramework,
                              PowerGraphFramework, Unsupported, by_name)
from repro.graph import generators, with_random_weights
from repro.primitives import bfs as gbfs, cc as gcc, sssp as gsssp


@pytest.fixture(scope="module")
def g():
    return generators.kronecker(9, seed=3)


@pytest.fixture(scope="module")
def gw(g):
    return with_random_weights(g, seed=5)


@pytest.fixture(scope="module")
def ref_bfs(g):
    return gbfs(g, 0).labels


@pytest.fixture(scope="module")
def ref_sssp(gw):
    return gsssp(gw, 0).labels


FRAMEWORKS = [cls() for cls in ALL_FRAMEWORKS]


@pytest.mark.parametrize("fw", FRAMEWORKS, ids=lambda f: f.name)
def test_bfs_agreement(fw, g, ref_bfs):
    try:
        r = fw.bfs(g, 0)
    except Unsupported:
        pytest.skip(f"{fw.name} has no BFS")
    assert np.array_equal(np.asarray(r["labels"]), ref_bfs)
    assert r.runtime_ms > 0


@pytest.mark.parametrize("fw", FRAMEWORKS, ids=lambda f: f.name)
def test_sssp_agreement(fw, gw, ref_sssp):
    try:
        r = fw.sssp(gw, 0)
    except Unsupported:
        pytest.skip(f"{fw.name} has no SSSP")
    ours = np.asarray(r["labels"], dtype=np.float64)
    assert np.allclose(np.where(np.isfinite(ours), ours, np.inf),
                       ref_sssp, equal_nan=True)


@pytest.mark.parametrize("fw", FRAMEWORKS, ids=lambda f: f.name)
def test_bc_agreement(fw, g):
    try:
        r = fw.bc(g, 0)
    except Unsupported:
        pytest.skip(f"{fw.name} has no BC")
    from repro.primitives import bc as gbc

    ref = gbc(g, 0)
    assert np.allclose(r["bc_values"], ref.bc_values)
    assert np.allclose(r["sigma"], ref.sigma)


@pytest.mark.parametrize("fw", FRAMEWORKS, ids=lambda f: f.name)
def test_pagerank_agreement(fw, g):
    try:
        r = fw.pagerank(g, max_iterations=None, tolerance=1e-10)
    except Unsupported:
        pytest.skip(f"{fw.name} has no PageRank")
    from repro.primitives import pagerank as gpr

    ref = gpr(g, tolerance=1e-10)
    ours = np.asarray(r["rank"], dtype=np.float64)
    assert np.allclose(ours / ours.sum(), ref.normalized(), atol=2e-4)


@pytest.mark.parametrize("fw", FRAMEWORKS, ids=lambda f: f.name)
def test_cc_agreement(fw, g):
    try:
        r = fw.cc(g)
    except Unsupported:
        pytest.skip(f"{fw.name} has no CC")
    ref = gcc(g)
    ids = np.asarray(r["component_ids"])
    assert len(np.unique(ids)) == ref.num_components
    remap = {}
    for a, b in zip(ref.component_ids.tolist(), ids.tolist()):
        assert remap.setdefault(a, b) == b


# -- unsupported cells must match Table 2's dashes -------------------------------------


def test_powergraph_has_no_bc(g):
    with pytest.raises(Unsupported):
        PowerGraphFramework().bc(g, 0)


def test_medusa_has_no_bc_or_cc(g):
    with pytest.raises(Unsupported):
        MedusaFramework().bc(g, 0)
    with pytest.raises(Unsupported):
        MedusaFramework().cc(g)


def test_mapgraph_has_no_bc(g):
    with pytest.raises(Unsupported):
        MapGraphFramework().bc(g, 0)


def test_hardwired_has_no_pagerank(g):
    with pytest.raises(Unsupported):
        HardwiredFramework().pagerank(g)


# -- dispatch / registry ---------------------------------------------------------------


def test_by_name_roundtrip():
    for cls in ALL_FRAMEWORKS:
        assert isinstance(by_name(cls.name), cls)
    with pytest.raises(KeyError):
        by_name("nothing")


def test_run_dispatch(g, gw):
    fw = GunrockFramework()
    assert fw.run("bfs", g, src=0).primitive == "bfs"
    assert fw.run("cc", g).primitive == "cc"
    with pytest.raises(ValueError):
        fw.run("nope", g)


# -- cost-model shape assertions (the paper's qualitative claims) -------------------------


def test_gpu_beats_bgl_on_traversal(g, gw):
    """Section 6: 'at least an order of magnitude faster on average' than
    BGL for BFS-based primitives on scale-free graphs."""
    gr = GunrockFramework()
    bgl = BglFramework()
    assert bgl.bfs(g, 0).runtime_ms > 2 * gr.bfs(g, 0).runtime_ms
    assert bgl.sssp(gw, 0).runtime_ms > 2 * gr.sssp(gw, 0).runtime_ms


def test_powergraph_slowest_gpu_rows(g):
    """PowerGraph pays distributed sync every super-step: orders of
    magnitude behind any GPU framework."""
    pg = PowerGraphFramework().bfs(g, 0).runtime_ms
    gr = GunrockFramework().bfs(g, 0).runtime_ms
    assert pg > 10 * gr


def test_gunrock_beats_mapgraph_bfs(g):
    """Table 2 geomean: Gunrock 3.0x over MapGraph on BFS."""
    mg = MapGraphFramework().bfs(g, 0).runtime_ms
    gr = GunrockFramework().bfs(g, 0).runtime_ms
    assert gr < mg


def test_gunrock_beats_medusa_bfs(g):
    md = MedusaFramework().bfs(g, 0).runtime_ms
    gr = GunrockFramework().bfs(g, 0).runtime_ms
    assert gr < md


def test_hardwired_close_to_gunrock_bfs(g):
    """'comparable performance to the fastest GPU hardwired primitives':
    hardwired wins, but within a small factor."""
    hw = HardwiredFramework().bfs(g, 0).runtime_ms
    gr = GunrockFramework().bfs(g, 0).runtime_ms
    assert hw <= gr
    assert gr < 6 * hw


def test_gunrock_cc_slower_than_hardwired_but_bounded(g):
    """Section 6: 'for CC, Gunrock is 1.5-2x slower than the hardwired
    GPU implementation' — allow some slack around that band."""
    hw = HardwiredFramework().cc(g).runtime_ms
    gr = GunrockFramework().cc(g).runtime_ms
    assert 1.2 <= gr / hw <= 4.0


def test_ligra_competitive_with_gunrock(g):
    """'Compared to Ligra, Gunrock's performance is generally comparable'
    — same order of magnitude, either may win."""
    li = LigraFramework().bfs(g, 0).runtime_ms
    gr = GunrockFramework().bfs(g, 0).runtime_ms
    assert 0.05 < gr / li < 20.0


def test_framework_result_mteps(g):
    r = GunrockFramework().bfs(g, 0)
    assert r.mteps(g.m) > 0
