"""Operator tests: advance (push/pull, vertex/edge), filter + heuristics,
compute, priority queue, neighbor-reduce, sample."""

import numpy as np
import pytest

from repro.core import (Frontier, FrontierKind, Functor, ProblemBase,
                        advance, compute, filter_frontier, neighbor_reduce,
                        sample, IdempotenceHeuristics, NearFarPile,
                        split_near_far)
from repro.core.operators.advance import expand_push
from repro.core.operators.compute import compute_masked
from repro.graph import from_edges
from repro.simt import Machine


class PlainProblem(ProblemBase):
    def __init__(self, graph, machine=None):
        super().__init__(graph, machine)
        self.add_vertex_array("labels", np.int64, -1)

    def unvisited_mask(self):
        return self.labels < 0


@pytest.fixture()
def diamond():
    """0 -> {1,2} -> 3, directed."""
    return from_edges([(0, 1), (0, 2), (1, 3), (2, 3)], n=4)


# -- expansion ---------------------------------------------------------------


def test_expand_push(diamond):
    P = PlainProblem(diamond)
    srcs, dsts, eids, degs = expand_push(P, np.array([0, 1]))
    assert srcs.tolist() == [0, 0, 1]
    assert dsts.tolist() == [1, 2, 3]
    assert degs.tolist() == [2, 1]
    # edge ids index the CSR storage
    assert np.array_equal(diamond.indices[eids], dsts)


def test_expand_push_empty(diamond):
    P = PlainProblem(diamond)
    srcs, dsts, eids, degs = expand_push(P, np.array([3]))
    assert len(srcs) == 0
    assert degs.tolist() == [0]


# -- advance (push) -------------------------------------------------------------


def test_advance_vertex_to_vertex(diamond):
    P = PlainProblem(diamond)
    out = advance(P, Frontier.from_vertex(0), Functor())
    assert sorted(out.items.tolist()) == [1, 2]
    assert out.kind is FrontierKind.VERTEX


def test_advance_vertex_to_edge(diamond):
    P = PlainProblem(diamond)
    out = advance(P, Frontier.from_vertex(0), Functor(), output_kind="edge")
    assert out.kind is FrontierKind.EDGE
    assert np.array_equal(diamond.indices[out.items], [1, 2])


def test_advance_from_edge_frontier(diamond):
    """An edge frontier advances from its destination endpoints."""
    P = PlainProblem(diamond)
    e = advance(P, Frontier.from_vertex(0), Functor(), output_kind="edge")
    out = advance(P, e, Functor())
    assert sorted(out.items.tolist()) == [3, 3]  # via 1 and via 2


def test_advance_cond_masks(diamond):
    class OnlyOdd(Functor):
        def cond_edge(self, P, src, dst, eid):
            return dst % 2 == 1

    P = PlainProblem(diamond)
    out = advance(P, Frontier.from_vertex(0), OnlyOdd())
    assert out.items.tolist() == [1]


def test_advance_apply_mask_narrows(diamond):
    class ApplyDrop(Functor):
        def apply_edge(self, P, src, dst, eid):
            return dst > 1

    P = PlainProblem(diamond)
    out = advance(P, Frontier.from_vertex(0), ApplyDrop())
    assert out.items.tolist() == [2]


def test_advance_duplicates_preserved_without_dedupe(diamond):
    P = PlainProblem(diamond)
    out = advance(P, Frontier(np.array([1, 2])), Functor())
    assert out.items.tolist() == [3, 3]


def test_advance_dedupe_output(diamond):
    P = PlainProblem(diamond)
    out = advance(P, Frontier(np.array([1, 2])), Functor(), dedupe_output=True)
    assert out.items.tolist() == [3]


def test_advance_empty_frontier(diamond):
    P = PlainProblem(diamond)
    out = advance(P, Frontier.empty(), Functor())
    assert out.is_empty


def test_advance_functor_mask_length_checked(diamond):
    class Bad(Functor):
        def cond_edge(self, P, src, dst, eid):
            return np.ones(1, dtype=bool)

    P = PlainProblem(diamond)
    with pytest.raises(ValueError):
        advance(P, Frontier.from_vertex(0), Bad())


def test_advance_unknown_mode(diamond):
    P = PlainProblem(diamond)
    with pytest.raises(ValueError):
        advance(P, Frontier.from_vertex(0), Functor(), mode="sideways")


def test_advance_charges_machine(diamond):
    m = Machine()
    P = PlainProblem(diamond, m)
    advance(P, Frontier.from_vertex(0), Functor())
    assert m.counters.kernel_launches == 1  # fused advance
    assert m.counters.edges_visited == 2


# -- advance (pull) -------------------------------------------------------------


def test_advance_pull_equivalent_to_push(kron_graph):
    class Label(Functor):
        def cond_edge(self, P, src, dst, eid):
            return P.labels[dst] < 0

        def apply_edge(self, P, src, dst, eid):
            P.labels[dst] = 1
            return None

    # one BFS step from vertex 0, both directions
    P1 = PlainProblem(kron_graph)
    P1.labels[0] = 0
    out_push = advance(P1, Frontier.from_vertex(0), Label())

    P2 = PlainProblem(kron_graph)
    P2.labels[0] = 0
    out_pull = advance(P2, Frontier.from_vertex(0), Label(), mode="pull")

    assert np.array_equal(np.unique(out_push.items), np.unique(out_pull.items))
    assert np.array_equal(P1.labels, P2.labels)


def test_advance_pull_requires_vertex_output(diamond):
    P = PlainProblem(diamond)
    with pytest.raises(ValueError):
        advance(P, Frontier.from_vertex(0), Functor(), mode="pull",
                output_kind="edge")


def test_advance_pull_no_duplicates(kron_graph):
    """Pull admits each unvisited vertex at most once."""
    P = PlainProblem(kron_graph)
    P.labels[0] = 0
    out = advance(P, Frontier.from_vertex(0), Functor(), mode="pull")
    assert len(np.unique(out.items)) == len(out.items)


def test_advance_pull_examines_fewer_edges_with_large_frontier(kron_graph):
    """The early-exit payoff: from a huge frontier, pull touches fewer
    edges than push."""

    class Label(Functor):
        def cond_edge(self, P, src, dst, eid):
            return P.labels[dst] < 0

        def apply_edge(self, P, src, dst, eid):
            P.labels[dst] = 1
            return None

    n = kron_graph.n
    big = np.arange(0, n, 2, dtype=np.int64)  # half the graph

    m_push = Machine()
    P1 = PlainProblem(kron_graph, m_push)
    P1.labels[big] = 0
    advance(P1, Frontier(big), Label())

    m_pull = Machine()
    P2 = PlainProblem(kron_graph, m_pull)
    P2.labels[big] = 0
    advance(P2, Frontier(big), Label(), mode="pull")

    assert m_pull.counters.edges_visited < m_push.counters.edges_visited


# -- filter -------------------------------------------------------------------


def test_filter_cond(diamond):
    class KeepOdd(Functor):
        def cond_vertex(self, P, v):
            return v % 2 == 1

    P = PlainProblem(diamond)
    out = filter_frontier(P, Frontier(np.arange(4)), KeepOdd())
    assert out.items.tolist() == [1, 3]


def test_filter_apply_runs_on_survivors(diamond):
    class Mark(Functor):
        def cond_vertex(self, P, v):
            return v < 2

        def apply_vertex(self, P, v):
            P.labels[v] = 7
            return None

    P = PlainProblem(diamond)
    filter_frontier(P, Frontier(np.arange(4)), Mark())
    assert P.labels.tolist() == [7, 7, -1, -1]


def test_filter_apply_mask_narrows(diamond):
    class DropInApply(Functor):
        def apply_vertex(self, P, v):
            return v != 2

    P = PlainProblem(diamond)
    out = filter_frontier(P, Frontier(np.arange(4)), DropInApply())
    assert out.items.tolist() == [0, 1, 3]


def test_filter_edge_frontier(diamond):
    class KeepToThree(Functor):
        def cond_edge(self, P, src, dst, eid):
            return dst == 3

    P = PlainProblem(diamond)
    out = filter_frontier(P, Frontier.all_edges(diamond.m), KeepToThree())
    assert np.all(diamond.indices[out.items] == 3)
    assert out.kind is FrontierKind.EDGE


def test_filter_empty(diamond):
    P = PlainProblem(diamond)
    out = filter_frontier(P, Frontier.empty(), Functor())
    assert out.is_empty


def test_filter_charges_one_fused_kernel(diamond):
    m = Machine()
    P = PlainProblem(diamond, m)
    filter_frontier(P, Frontier(np.arange(4)), Functor())
    assert m.counters.kernel_launches == 1


# -- idempotence heuristics -------------------------------------------------------


def test_warp_cull_drops_within_warp_duplicates():
    h = IdempotenceHeuristics(warp_size=4)
    items = np.array([5, 5, 6, 5, 5, 7, 7, 8])
    keep = h.warp_cull(items)
    # warp 0: [5,5,6,5] -> keep first 5 and 6; warp 1: [5,7,7,8] -> 5,7,8
    assert keep.tolist() == [True, False, True, False, True, True, False, True]


def test_history_cull_drops_repeats():
    h = IdempotenceHeuristics(history_bits=4)
    first = h.history_cull(np.array([1, 2, 3]))
    assert first.all()
    again = h.history_cull(np.array([1, 2, 9]))
    assert again.tolist() == [False, False, True]


def test_history_cull_collision_keeps_different_items():
    h = IdempotenceHeuristics(history_bits=2)  # 4 slots: 1 and 5 collide
    h.history_cull(np.array([1]))
    keep = h.history_cull(np.array([5]))
    assert keep.tolist() == [True]  # different item, kept despite collision


def test_heuristics_reduce_but_preserve_coverage(kron_graph):
    """Heuristics may keep duplicates but must never drop ALL copies of a
    vertex (at least one survives)."""
    h = IdempotenceHeuristics()
    P = PlainProblem(kron_graph)
    rng = np.random.default_rng(0)
    items = rng.integers(0, kron_graph.n, size=5000).astype(np.int64)
    out = filter_frontier(P, Frontier(items), Functor(), heuristics=h)
    assert len(out) < len(items)
    assert set(np.unique(items)) == set(np.unique(out.items))


def test_heuristics_reset():
    h = IdempotenceHeuristics()
    h.history_cull(np.array([1]))
    h.reset()
    assert h.history_cull(np.array([1])).all()


# -- compute ---------------------------------------------------------------------


def test_compute_applies(diamond):
    class Inc(Functor):
        def apply_vertex(self, P, v):
            P.labels[v] = v * 10
            return None

    P = PlainProblem(diamond)
    f = Frontier(np.array([1, 3]))
    out = compute(P, f, Inc())
    assert out is f  # frontier unchanged
    assert P.labels.tolist() == [-1, 10, -1, 30]


def test_compute_masked(diamond):
    class Drop2(Functor):
        def apply_vertex(self, P, v):
            return v != 2

    P = PlainProblem(diamond)
    out = compute_masked(P, Frontier(np.arange(4)), Drop2())
    assert out.items.tolist() == [0, 1, 3]


def test_compute_edge_frontier(diamond):
    seen = []

    class Rec(Functor):
        def apply_edge(self, P, src, dst, eid):
            seen.append((src.tolist(), dst.tolist()))
            return None

    P = PlainProblem(diamond)
    compute(P, Frontier.all_edges(diamond.m), Rec())
    assert len(seen) == 1


# -- priority queue --------------------------------------------------------------


def _prio(P, v):
    return v.astype(np.float64)


def test_split_near_far(diamond):
    P = PlainProblem(diamond)
    near, far = split_near_far(P, Frontier(np.arange(4)), _prio, 2.0)
    assert near.items.tolist() == [0, 1]
    assert far.items.tolist() == [2, 3]


def test_split_empty(diamond):
    P = PlainProblem(diamond)
    near, far = split_near_far(P, Frontier.empty(), _prio, 2.0)
    assert near.is_empty and far.is_empty


def test_split_bad_priority_fn(diamond):
    P = PlainProblem(diamond)
    with pytest.raises(ValueError):
        split_near_far(P, Frontier(np.arange(4)),
                       lambda P, v: np.zeros(1), 2.0)


def test_near_far_pile_levels(diamond):
    P = PlainProblem(diamond)
    pile = NearFarPile(P, _prio, delta=2.0)
    pile.push(Frontier(np.arange(6) % 4))
    near1 = pile.pop_near()
    assert set(near1.items.tolist()) == {0, 1}
    near2 = pile.pop_near()
    assert set(near2.items.tolist()) == {2, 3}
    assert pile.level == 2
    assert pile.pop_near().is_empty
    assert pile.exhausted


def test_near_far_pile_rejects_bad_delta(diamond):
    P = PlainProblem(diamond)
    with pytest.raises(ValueError):
        NearFarPile(P, _prio, delta=0.0)


# -- neighbor_reduce ---------------------------------------------------------------


def test_neighbor_reduce_sum(diamond):
    P = PlainProblem(diamond)
    out = neighbor_reduce(P, Frontier(np.array([0, 1, 3])),
                          lambda P, s, d, e: d.astype(float), op="sum")
    assert out.tolist() == [3.0, 3.0, 0.0]


def test_neighbor_reduce_min_max(diamond):
    P = PlainProblem(diamond)
    f = Frontier(np.array([0, 3]))
    mn = neighbor_reduce(P, f, lambda P, s, d, e: d.astype(float), op="min")
    mx = neighbor_reduce(P, f, lambda P, s, d, e: d.astype(float), op="max")
    assert mn.tolist() == [1.0, np.inf]
    assert mx.tolist() == [2.0, -np.inf]


def test_neighbor_reduce_rejects_edge_frontier(diamond):
    P = PlainProblem(diamond)
    with pytest.raises(ValueError):
        neighbor_reduce(P, Frontier.all_edges(diamond.m),
                        lambda P, s, d, e: np.ones(len(s)))


def test_neighbor_reduce_rejects_bad_op(diamond):
    P = PlainProblem(diamond)
    with pytest.raises(ValueError):
        neighbor_reduce(P, Frontier.from_vertex(0),
                        lambda P, s, d, e: np.ones(len(s)), op="median")


def test_neighbor_reduce_rejects_bad_value_fn(diamond):
    P = PlainProblem(diamond)
    with pytest.raises(ValueError):
        neighbor_reduce(P, Frontier.from_vertex(0),
                        lambda P, s, d, e: np.ones(1))


def test_neighbor_reduce_degree_via_ones(kron_graph):
    P = PlainProblem(kron_graph)
    f = Frontier.all_vertices(kron_graph.n)
    out = neighbor_reduce(P, f, lambda P, s, d, e: np.ones(len(s)))
    assert np.array_equal(out, kron_graph.out_degrees.astype(float))


# -- sample ------------------------------------------------------------------------


def test_sample_fraction(diamond):
    P = PlainProblem(diamond)
    f = Frontier(np.arange(100) % 4)
    out = sample(P, f, 0.25, seed=1)
    assert len(out) == 25


def test_sample_full_is_identity(diamond):
    P = PlainProblem(diamond)
    f = Frontier(np.arange(4))
    assert sample(P, f, 1.0) is f


def test_sample_deterministic(diamond):
    P = PlainProblem(diamond)
    f = Frontier(np.arange(50))
    a = sample(P, f, 0.3, seed=7)
    b = sample(P, f, 0.3, seed=7)
    assert np.array_equal(a.items, b.items)


def test_sample_min_size(diamond):
    P = PlainProblem(diamond)
    f = Frontier(np.arange(10))
    out = sample(P, f, 0.01, min_size=3, seed=1)
    assert len(out) == 3


def test_sample_rejects_bad_fraction(diamond):
    P = PlainProblem(diamond)
    with pytest.raises(ValueError):
        sample(P, Frontier(np.arange(4)), 0.0)
