"""Load-balance strategy tests: cost shapes must reflect Section 4.4's
qualitative claims (thread-mapped suffers on skew, TWC/LB tame it)."""

import numpy as np
import pytest

from repro.core.loadbalance import (DEFAULT_THRESHOLD, Hybrid, LBPartitioned,
                                    ThreadMapped, TWC, default_load_balancer)
from repro.core.loadbalance.base import pad_reshape
from repro.simt import GPUSpec

SPEC = GPUSpec()


def makespan(est):
    if len(est.cta_costs) == 0:
        return est.setup_cycles
    total = est.cta_costs.sum()
    return max(est.cta_costs.max(), total / SPEC.num_sm) + est.setup_cycles


def test_pad_reshape():
    tiles = pad_reshape(np.array([1, 2, 3]), 2)
    assert tiles.shape == (2, 2)
    assert tiles.tolist() == [[1, 2], [3, 0]]


def test_pad_reshape_empty():
    assert pad_reshape(np.zeros(0, dtype=np.int64), 4).shape == (0, 4)


def test_thread_mapped_uniform():
    degs = np.full(SPEC.cta_size, 4)
    est = ThreadMapped(cooperative=True).estimate(degs, SPEC, 1.0, 0.0)
    assert len(est.cta_costs) == 1
    # 1024 edges at the aggregate per-edge rate
    assert est.cta_costs[0] == pytest.approx(1024.0)


def test_thread_mapped_naive_pays_max():
    from repro.simt import calib

    degs = np.array([1000] + [1] * (SPEC.cta_size - 1))
    naive = ThreadMapped(cooperative=False).estimate(degs, SPEC, 1.0, 0.0)
    coop = ThreadMapped(cooperative=True).estimate(degs, SPEC, 1.0, 0.0)
    # the 1000-edge list is walked by a single latency-bound lane
    assert naive.cta_costs[0] == pytest.approx(1000.0 * calib.C_EDGE_SERIAL)
    assert coop.cta_costs[0] < naive.cta_costs[0]


def test_thread_mapped_cross_cta_imbalance():
    """Cooperative stripping balances within a CTA but not across CTAs —
    a hub in one CTA still dominates the makespan."""
    n = 256 * 15
    total = 150_000
    hub = np.full(n, 2)
    hub[0] = total - 2 * (n - 1)          # all excess work in CTA 0
    flat = np.full(n, total // n)          # same total, spread evenly
    est_hub = ThreadMapped().estimate(hub, SPEC, 1.0, 0.0)
    est_flat = ThreadMapped().estimate(flat, SPEC, 1.0, 0.0)
    assert makespan(est_hub) > 5 * makespan(est_flat)


def test_twc_classes():
    # one large (2*CTA), one medium (2*warp), many small
    degs = np.array([512, 64] + [3] * 254)
    est = TWC().estimate(degs, SPEC, 1.0, 0.0)
    assert len(est.cta_costs) == 1
    # large: 512 edges; medium: max(64, 2*64) skew-penalized; small: every
    # warp padded to its longest list (3 * 32 per warp, 8 warps); +overhead
    assert est.cta_costs[0] == pytest.approx(512 + 128 + 8 * 96 + 40.0)


def test_twc_beats_naive_thread_mapped_on_skew():
    rng = np.random.default_rng(0)
    degs = rng.zipf(1.8, size=4096).clip(1, 50_000)
    twc = TWC().estimate(degs, SPEC, 1.0, 0.0)
    naive = ThreadMapped(cooperative=False).estimate(degs, SPEC, 1.0, 0.0)
    assert makespan(twc) < makespan(naive)


def test_lb_partitioned_perfect_balance():
    rng = np.random.default_rng(0)
    degs = rng.zipf(1.8, size=4096).clip(1, 50_000)
    est = LBPartitioned().estimate(degs, SPEC, 1.0, 0.0)
    # all full chunks cost the same
    assert np.allclose(est.cta_costs[:-1], est.cta_costs[0])
    assert est.cta_costs[-1] <= est.cta_costs[0] + 1e-9


def test_lb_partitioned_beats_twc_on_extreme_skew():
    degs = np.array([500_000] + [1] * 100)
    lb = LBPartitioned().estimate(degs, SPEC, 1.0, 0.0)
    twc = TWC().estimate(degs, SPEC, 1.0, 0.0)
    assert makespan(lb) < makespan(twc)


def test_lb_partitioned_pays_setup():
    est = LBPartitioned().estimate(np.array([1, 1]), SPEC, 1.0, 0.0)
    assert est.setup_cycles > 0


def test_lb_partitioned_empty_frontier():
    est = LBPartitioned().estimate(np.zeros(0, dtype=np.int64), SPEC, 1.0, 0.0)
    assert len(est.cta_costs) == 0


def test_fine_grained_wins_on_small_even_frontier():
    """The reason the hybrid exists: tiny, even frontiers should not pay
    LB's scan + sorted-search setup."""
    degs = np.full(32, 3)
    fine = ThreadMapped().estimate(degs, SPEC, 1.0, 0.0)
    coarse = LBPartitioned().estimate(degs, SPEC, 1.0, 0.0)
    assert makespan(fine) < makespan(coarse)


def test_hybrid_threshold_dispatch():
    h = Hybrid()
    h.estimate(np.full(10, 10), SPEC, 1.0, 0.0)     # total 100 < 4096
    assert h.last_choice == "thread_mapped"
    h.estimate(np.full(10, 1000), SPEC, 1.0, 0.0)   # total 10000 >= 4096
    assert h.last_choice == "lb_partitioned"


def test_hybrid_default_threshold_is_papers():
    assert Hybrid().threshold == 4096 == DEFAULT_THRESHOLD


def test_default_load_balancer():
    lb = default_load_balancer()
    assert isinstance(lb, Hybrid)


@pytest.mark.parametrize("strategy", [ThreadMapped(), ThreadMapped(False),
                                      TWC(), LBPartitioned(), Hybrid()])
def test_all_strategies_handle_empty(strategy):
    est = strategy.estimate(np.zeros(0, dtype=np.int64), SPEC, 1.0, 1.0)
    assert len(est.cta_costs) == 0


@pytest.mark.parametrize("strategy", [ThreadMapped(), TWC(), LBPartitioned()])
def test_cost_scales_with_work(strategy):
    small = strategy.estimate(np.full(100, 8), SPEC, 1.0, 0.0)
    big = strategy.estimate(np.full(10_000, 8), SPEC, 1.0, 0.0)
    assert makespan(big) > makespan(small)
