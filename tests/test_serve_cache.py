"""Versioned result cache: LRU byte budget + staleness-by-construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import with_random_weights
from repro.serve import (GraphService, Request, ResultCache, WorkloadSpec,
                         plan_batches, query_key, run_serving)
from repro.simt import Machine


def _payload(nbytes: int):
    class P:
        pass
    p = P()
    p.nbytes = nbytes
    return p


def test_hit_miss_accounting():
    c = ResultCache(1 << 20)
    key = query_key("bfs", {"src": 0})
    assert c.get("g", 0, key) is None
    payload = _payload(100)
    assert c.put("g", 0, key, payload, 100)
    assert c.get("g", 0, key) is payload
    assert c.stats.hits == 1 and c.stats.misses == 1
    assert c.stats.hit_rate() == 0.5


def test_version_is_part_of_the_key():
    c = ResultCache(1 << 20)
    key = query_key("bfs", {"src": 0})
    c.put("g", 0, key, _payload(10), 10)
    assert c.get("g", 1, key) is None  # new version: unreachable, a miss
    assert c.get("g", 0, key) is not None
    assert c.stats.stale_rejections == 0


def test_lru_eviction_by_byte_budget():
    c = ResultCache(300)
    for i in range(3):
        c.put("g", 0, query_key("bfs", {"src": i}), _payload(100), 100)
    c.get("g", 0, query_key("bfs", {"src": 0}))  # refresh src=0
    c.put("g", 0, query_key("bfs", {"src": 3}), _payload(100), 100)
    # src=1 was least recently used: evicted; src=0 survived the refresh
    assert c.get("g", 0, query_key("bfs", {"src": 1})) is None
    assert c.get("g", 0, query_key("bfs", {"src": 0})) is not None
    assert c.stats.evictions == 1
    assert c.bytes_used <= 300


def test_oversize_entry_refused():
    c = ResultCache(50)
    assert not c.put("g", 0, query_key("bfs", {"src": 0}), _payload(51), 51)
    assert len(c) == 0 and c.bytes_used == 0


def test_put_replaces_same_key():
    c = ResultCache(1 << 10)
    key = query_key("bfs", {"src": 0})
    c.put("g", 0, key, _payload(100), 100)
    c.put("g", 0, key, _payload(40), 40)
    assert len(c) == 1 and c.bytes_used == 40


def test_invalidate_graph_sweeps_dead_versions():
    c = ResultCache(1 << 10)
    c.put("g", 0, query_key("bfs", {"src": 0}), _payload(10), 10)
    c.put("g", 1, query_key("bfs", {"src": 1}), _payload(10), 10)
    c.put("h", 0, query_key("bfs", {"src": 2}), _payload(10), 10)
    dropped = c.invalidate_graph("g", keep_version=1)
    assert dropped == 1
    assert c.get("g", 1, query_key("bfs", {"src": 1})) is not None
    assert c.get("h", 0, query_key("bfs", {"src": 2})) is not None
    assert c.stats.invalidated == 1


def test_budget_validation():
    with pytest.raises(ValueError):
        ResultCache(-1)


# -- through the service: a graph mutation must never serve stale ------------


def test_service_version_bump_invalidates(kron_graph):
    service = GraphService()
    service.load_graph(kron_graph)
    req = Request(rid=0, primitive="bfs", params={"src": 3})
    service.validate(req)
    assert service.lookup(req) is None

    (batch,) = plan_batches("bfs", [(0, {"src": 3})])
    service.run_batch("default", batch, Machine())
    hit = service.lookup(req)
    assert hit is not None
    old_labels = hit.arrays["labels"].copy()

    # mutate the graph (new weights = new topology version) and bump
    mutated = with_random_weights(kron_graph, seed=99)
    vg = service.update_graph(mutated)
    assert vg.version == 1
    assert service.lookup(req) is None  # same query, new version: a miss
    assert service.cache.stats.stale_rejections == 0

    # recompute against the new version; the old payload is untouched
    service.run_batch("default", batch, Machine())
    fresh = service.lookup(req)
    assert fresh is not None
    np.testing.assert_array_equal(fresh.arrays["labels"], old_labels)


def test_replay_with_updates_has_zero_stale_hits(kron_graph):
    spec = WorkloadSpec(requests=150, seed=13, updates=3,
                        update_interval_ms=15.0)
    report = run_serving(kron_graph, spec)
    assert report.stale_hits == 0
    assert report.cache["invalidated"] > 0  # the bumps actually swept
