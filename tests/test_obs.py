"""Observability layer: metrics registry, spans, exporters, wiring.

The three contracts this file pins (DESIGN §11):

1. **Determinism** — same-seed runs produce byte-identical metric dumps
   and byte-identical Chrome-trace files.
2. **1:1 kernel spans** — the tracer records exactly one ``kernel`` span
   per simulated kernel launch (``counters.kernel_launches``).
3. **Zero simulated overhead** — total simulated cycles are identical
   with the observer installed, absent, or trace-disabled.
"""

import json

import numpy as np
import pytest

from repro.obs import (CAT_KERNEL, CAT_OPERATOR, CAT_PRIMITIVE, CAT_RECOVERY,
                       CAT_SUPERSTEP, Counter, Gauge, Histogram,
                       MetricsRegistry, NOOP_SPAN, Observer, chrome_trace,
                       current_observer, install, is_enabled, metrics_dump,
                       observe, span, validate_chrome_trace,
                       write_chrome_trace, write_metrics)
from repro.simt import Machine


# -- metrics registry --------------------------------------------------------


def test_counter_monotone():
    c = Counter()
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_goes_anywhere():
    g = Gauge()
    g.set(5)
    g.dec(7)
    assert g.value == -2.0


def test_histogram_quantiles_deterministic():
    h = Histogram(bounds=(1.0, 2.0, 4.0, 8.0))
    for v in (0.5, 1.5, 1.5, 3.0, 5.0, 100.0):
        h.observe(v)
    assert h.count == 6
    assert h.sum == pytest.approx(111.5)
    # overflow quantile clamps to the largest finite bound
    assert h.quantile(1.0) == 8.0
    assert h.quantile(0.0) == 0.0
    p = h.percentiles()
    assert set(p) == {"p50", "p95", "p99"}
    assert p["p50"] <= p["p95"] <= p["p99"]


def test_histogram_empty_and_bad_bounds():
    assert Histogram().quantile(0.5) == 0.0
    with pytest.raises(ValueError):
        Histogram(bounds=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram().quantile(1.5)


def test_registry_get_or_create_and_type_conflict():
    r = MetricsRegistry()
    assert r.counter("x_total", a=1) is r.counter("x_total", a=1)
    assert r.counter("x_total", a=2) is not r.counter("x_total", a=1)
    with pytest.raises(TypeError):
        r.gauge("x_total")


def test_registry_dump_byte_identical_across_insertion_orders():
    def build(order):
        r = MetricsRegistry()
        for name, labels in order:
            r.counter(name, **labels).inc()
        r.histogram("h_ms").observe(3.0)
        return r

    seq = [("a_total", {"k": "x"}), ("a_total", {"k": "y"}),
           ("b_total", {})]
    d1 = metrics_dump(build(seq))
    d2 = metrics_dump(build(list(reversed(seq))))
    assert d1 == d2
    assert "# TYPE a_total counter" in d1
    assert 'a_total{k="x"} 1' in d1
    assert "h_ms_bucket" in d1 and "h_ms_count 1" in d1


# -- spans: disabled path ----------------------------------------------------


def test_disabled_path_returns_shared_noop_span():
    assert current_observer() is None
    assert not is_enabled()
    sp = span("advance", CAT_OPERATOR, frontier=10)
    assert sp is NOOP_SPAN
    assert not sp.enabled
    with sp:
        sp.set(anything=1)  # all no-ops


def test_observe_installs_and_restores():
    assert current_observer() is None
    with observe() as ob:
        assert current_observer() is ob
        inner = Observer()
        prev = install(inner)
        assert prev is ob
        install(prev)
    assert current_observer() is None


# -- spans: kernel 1:1, context inheritance ---------------------------------


def _run_bfs(machine, kron_graph):
    from repro.primitives import bfs

    return bfs(kron_graph, 0, machine=machine)


def test_kernel_spans_match_launch_counters(kron_graph):
    with observe() as ob:
        m = Machine()
        _run_bfs(m, kron_graph)
    kspans = ob.tracer.kernel_spans()
    assert len(kspans) == m.counters.kernel_launches
    launches = ob.metrics.samples("repro_kernel_launches_total")
    assert sum(c.value for _, c in launches) == m.counters.kernel_launches
    cycles = ob.metrics.samples("repro_kernel_cycles_total")
    assert sum(c.value for _, c in cycles) == pytest.approx(
        sum(k.cycles for k in m.counters.kernels))


def test_kernel_spans_inherit_operator_and_primitive_context(kron_graph):
    with observe() as ob:
        _run_bfs(Machine(), kron_graph)
    cats = {s.cat for s in ob.tracer.spans}
    assert {CAT_PRIMITIVE, CAT_SUPERSTEP, CAT_OPERATOR, CAT_KERNEL} <= cats
    prim = [s for s in ob.tracer.spans if s.cat == CAT_PRIMITIVE]
    assert [s.name for s in prim] == ["bfs"]
    assert prim[0].args["iterations"] >= 1
    for k in ob.tracer.kernel_spans():
        assert k.args["primitive"] == "bfs"
        assert "items" in k.args and "cycles" in k.args
    # operator spans carry frontier sizes and the lb strategy on advance
    adv = [s for s in ob.tracer.spans
           if s.cat == CAT_OPERATOR and s.name == "advance"]
    assert adv and all("lb" in s.args and "frontier" in s.args for s in adv)


def test_span_timestamps_are_simulated_cycles(kron_graph):
    with observe() as ob:
        m = Machine()
        _run_bfs(m, kron_graph)
    total = m.counters.cycles
    for s in ob.tracer.spans:
        assert 0 <= s.ts <= total
        assert s.ts + s.dur <= total + 1e-9


# -- the overhead contract ---------------------------------------------------


def test_simulated_cycles_identical_with_observer_on_off(kron_graph):
    m_off = Machine()
    r_off = _run_bfs(m_off, kron_graph)
    with observe():
        m_on = Machine()
        r_on = _run_bfs(m_on, kron_graph)
    with observe(Observer(trace=False)):
        m_nt = Machine()
        _run_bfs(m_nt, kron_graph)
    assert m_on.counters.cycles == m_off.counters.cycles
    assert m_nt.counters.cycles == m_off.counters.cycles
    assert m_on.counters.kernel_launches == m_off.counters.kernel_launches
    assert np.array_equal(r_on.labels, r_off.labels)


# -- exporters ---------------------------------------------------------------


def _trace_doc(kron_graph):
    with observe() as ob:
        _run_bfs(Machine(), kron_graph)
    return chrome_trace(ob), ob


def test_chrome_trace_is_valid_and_counts_kernels(kron_graph):
    doc, ob = _trace_doc(kron_graph)
    assert validate_chrome_trace(doc) == []
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert len(xs) == len(ob.tracer.spans)
    kernels = [e for e in xs if e["cat"] == CAT_KERNEL]
    assert len(kernels) == doc["otherData"]["kernel_spans"]
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "M"}
    assert {"process_name", "thread_name"} <= names


def test_validate_chrome_trace_flags_problems():
    assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
    bad = {"traceEvents": [
        {"name": "x", "cat": "k", "ph": "X", "ts": -1, "dur": "no",
         "pid": 0, "tid": 0},
        {"name": "i", "cat": "k", "ph": "i", "ts": 0, "pid": 0, "tid": 0},
        {"ph": "Z"}, 7]}
    problems = validate_chrome_trace(bad)
    assert any("bad dur" in p for p in problems)
    assert any("bad ts" in p for p in problems)
    assert any("instant missing scope" in p for p in problems)
    assert any("unknown phase" in p for p in problems)
    assert any("not an object" in p for p in problems)


def test_same_seed_exports_byte_identical(tmp_path, kron_graph):
    paths = []
    for run in (1, 2):
        with observe() as ob:
            _run_bfs(Machine(), kron_graph)
        tp = tmp_path / f"trace{run}.json"
        mp = tmp_path / f"metrics{run}.txt"
        write_chrome_trace(ob, str(tp))
        write_metrics(ob.metrics, str(mp))
        paths.append((tp.read_bytes(), mp.read_bytes()))
    assert paths[0] == paths[1]
    # and the file parses back to a valid document
    doc = json.loads(paths[0][0])
    assert validate_chrome_trace(doc) == []


def test_chrome_trace_requires_tracer():
    with pytest.raises(ValueError):
        chrome_trace(Observer(trace=False))


# -- recovery instants -------------------------------------------------------


def test_recovery_emits_instants_and_fault_counters(kron_graph):
    from repro.primitives import bfs
    from repro.resilience import FaultKind, FaultPlan

    plan = FaultPlan.random(7, [FaultKind.TRANSIENT_KERNEL], steps=2)
    with observe() as ob:
        bfs(kron_graph, 0, machine=Machine(), checkpoint_every=1,
            faults=plan)
    recov = [i for i in ob.tracer.instants if i.cat == CAT_RECOVERY]
    assert any(i.name == "recovery.fault" for i in recov)
    assert any(i.name in ("recovery.replay_in_place", "recovery.rollback")
               for i in recov)
    faults = ob.metrics.samples("repro_faults_total")
    assert sum(c.value for _, c in faults) >= 1


# -- serving histograms ------------------------------------------------------


def _serve_report(seed=11):
    from repro.graph import generators
    from repro.serve import WorkloadSpec, run_serving

    g = generators.kronecker(8, seed=3)
    return run_serving(g, WorkloadSpec(requests=60, seed=seed))


def test_serve_report_latency_histogram_populated():
    report = _serve_report()
    assert report.served > 0
    assert report.latency_histogram  # at least one primitive recorded
    for qs in report.latency_histogram.values():
        assert qs["p50"] <= qs["p95"] <= qs["p99"]
    assert 0.0 <= report.p50_ms <= report.p95_ms <= report.p99_ms
    d = report.as_dict()
    assert d["p95_ms"] == round(report.p95_ms, 6)
    assert d["latency_histogram"] == {
        p: {q: round(v, 6) for q, v in sorted(qs.items())}
        for p, qs in sorted(report.latency_histogram.items())}
    assert "latency p95" in report.format()


def test_scheduler_reports_into_installed_observer():
    with observe() as ob:
        _serve_report()
    outcomes = ob.metrics.samples("repro_serve_requests_total")
    assert sum(c.value for _, c in outcomes) > 0
    lat = ob.metrics.samples("repro_serve_latency_ms")
    assert lat and all(h.count > 0 for _, h in lat)
    serve_spans = [s for s in ob.tracer.spans if s.name == "serve.batch"]
    assert serve_spans
    assert all("primitive" in s.args and "lanes" in s.args
               for s in serve_spans)


def test_serve_reports_byte_identical_across_same_seed_runs():
    a = json.dumps(_serve_report(seed=5).as_dict(), sort_keys=True)
    b = json.dumps(_serve_report(seed=5).as_dict(), sort_keys=True)
    assert a == b
