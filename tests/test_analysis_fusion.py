"""Fusion-safety verifier: verdict partition over the shipped primitives,
static-DAG-vs-dynamic-trace cross-check, the soundness property (static
write sets ⊇ sanitizer-observed write sets, pooled and unpooled), stale
suppressions, and report rendering/schema."""

import json
import os
import textwrap

import numpy as np
import pytest

import repro
from repro.analysis import sanitize
from repro.analysis.fusion import (analyze_paths, crosscheck_dag,
                                   validate_soundness)
from repro.analysis.report import (REPORT_SCHEMA_VERSION, render_dot,
                                   render_text, report_to_dict,
                                   validate_report_dict)
from repro.cli import PRIMITIVES, _run_primitive, main
from repro.core.workspace import pooling
from repro.simt import Machine

#: the pinned verdict partition over the shipped tree.  Every entry in
#: BLOCKED is a documented true positive: either the enactor mutates
#: problem arrays inline between operators (a real fusion blocker — the
#: write would have to become a kernel), the functor argument cannot be
#: statically bounded (lambda / expression), or the primitive bypasses
#: the operator wrappers entirely (hardwired).
FUSABLE = {"bc", "bfs", "cc", "pagerank", "ppr", "sssp"}
BLOCKED = {"coloring", "gatherpagerank", "hits", "labelprop", "mis",
           "mst", "salsa"}
HARDWIRED = {"kcore", "triangles", "wtf"}

#: CLI primitive name -> analyzer primitive name where they differ
_REPORT_NAME = {"color": "coloring"}


def _primitives_dir() -> str:
    return os.path.join(os.path.dirname(repro.__file__), "primitives")


@pytest.fixture(scope="module")
def tree_report():
    return analyze_paths([_primitives_dir()])


# ------------------------------------------------------------- verdicts

def test_every_primitive_reports_a_verdict(tree_report):
    names = {p.name for p in tree_report.primitives}
    assert names == FUSABLE | BLOCKED | HARDWIRED


def test_fusable_partition_is_pinned(tree_report):
    assert {p.name for p in tree_report.primitives if p.fusable} == FUSABLE


def test_blocked_primitives_carry_reasons(tree_report):
    for p in tree_report.primitives:
        if not p.fusable:
            assert p.blocking, f"{p.name} blocked without a reason"


def test_hardwired_primitives_flagged(tree_report):
    assert {p.name for p in tree_report.primitives
            if p.hardwired} == HARDWIRED


def test_every_fusable_verdict_has_a_compiled_plan(tree_report):
    """Plan-coverage regression (guards ROADMAP item 3's cleanup): every
    primitive the analyzer reports fusable must have a compiled plan,
    and every blocked primitive must surface a non-empty reason string
    through its plan — a verdict without a plan (or a blocked plan
    without a reason) means the specializer and the analyzer drifted."""
    from repro.analysis.plan import static_plans

    plans = static_plans()
    for rep in tree_report.primitives:
        assert rep.name in plans, rep.name
        plan = plans[rep.name]
        if rep.fusable:
            assert plan.fusable, (rep.name, plan.blocked)
            assert plan.stages, f"{rep.name}: fusable plan has no stages"
        else:
            assert not plan.fusable, rep.name
            assert plan.blocked, f"{rep.name}: blocked without a reason"
            assert all(r.strip() for r in plan.blocked), rep.name


def test_shipped_tree_analyzes_clean(tree_report):
    """The acceptance bar: no unsuppressed GR006-GR012 violations and no
    stale suppressions in the tree we ship."""
    assert tree_report.violations == []
    assert tree_report.stale == []


def test_blocking_reasons_name_real_inline_writes(tree_report):
    """Spot-check one true positive per blocked class of reason."""
    mis = tree_report.primitive("mis")
    assert any("inline write" in r and "'state'" in r for r in mis.blocking)
    gpr = tree_report.primitive("gatherpagerank")
    assert any("unresolvable functor" in r for r in gpr.blocking)


def test_bfs_dag_binds_both_functor_variants(tree_report):
    bfs = tree_report.primitive("bfs")
    advance = next(n for n in bfs.dag if n.op == "advance")
    assert set(advance.functors) == {"_IdempotentBfsFunctor",
                                     "_AtomicBfsFunctor"}


def test_cc_hook_functors_use_single_reduction_each(tree_report):
    """Regression for the GR011 split: each hook variant commits to one
    atomic op; the alternate schedule mixes them only across barriers."""
    cc = tree_report.primitive("cc")
    assert cc.fusable
    mins = cc.functors["_HookMinFunctor"].write_kinds()["component_ids"]
    maxs = cc.functors["_HookMaxFunctor"].write_kinds()["component_ids"]
    assert mins["ops"] == {"min"}
    assert maxs["ops"] == {"max"}


def test_sssp_atomic_min_verified_fusable(tree_report):
    sssp = tree_report.primitive("sssp")
    assert sssp.fusable
    relax = sssp.functors["_RelaxFunctor"]
    assert relax.write_kinds()["labels"]["ops"] == {"min"}


# ---------------------------------------- static DAG vs dynamic spans

@pytest.mark.parametrize("prim", ["bfs", "sssp", "pagerank", "cc", "bc"])
def test_static_dag_covers_dynamic_op_sequence(prim, kron_graph,
                                               tree_report):
    result, _ = _run_primitive(prim, kron_graph, 0, Machine())
    stats = result.enactor_stats
    ops = {e.op for e in stats.trace}
    assert ops, f"{prim} traced no operators"
    missing = crosscheck_dag(tree_report.primitive(prim), sorted(ops))
    assert missing == [], \
        f"{prim}: dynamic ops {missing} absent from the static DAG"


# -------------------------------------------------- soundness property

def _soundness_gaps(prim, graph, tree_report):
    with sanitize(strict=False) as s:
        _run_primitive(prim, graph, 0, Machine())
    rname = _REPORT_NAME.get(prim, prim)
    return validate_soundness(tree_report.primitive(rname),
                              s.observed_writes)


@pytest.mark.parametrize("pooled", [False, True],
                         ids=["unpooled", "pooled"])
@pytest.mark.parametrize("prim", PRIMITIVES)
def test_static_write_sets_superset_of_sanitizer(prim, pooled, kron_graph,
                                                 tree_report):
    """The soundness pin: for every primitive, every array the dynamic
    sanitizer saw a functor write is in that functor's static write set."""
    with pooling(pooled):
        gaps = _soundness_gaps(prim, kron_graph, tree_report)
    assert gaps == []


@pytest.mark.parametrize("pooled", [False, True],
                         ids=["unpooled", "pooled"])
def test_soundness_holds_for_ppr(pooled, kron_graph, tree_report):
    from repro.primitives import ppr

    with pooling(pooled):
        with sanitize(strict=False) as s:
            ppr(kron_graph, seeds=[0, 1])
    gaps = validate_soundness(tree_report.primitive("ppr"),
                              s.observed_writes)
    assert gaps == []


def test_soundness_holds_for_salsa(tree_report):
    from repro.graph import from_edges
    from repro.primitives import salsa
    from repro.primitives.bipartite import BipartiteGraph

    g = from_edges([(0, 3), (0, 4), (1, 4), (2, 5)], n=6)
    bp = BipartiteGraph(g, n_left=3, n_right=3)
    with sanitize(strict=False) as s:
        salsa(bp, max_iterations=4)
    gaps = validate_soundness(tree_report.primitive("salsa"),
                              s.observed_writes)
    assert gaps == []


def test_validate_soundness_reports_gaps(tree_report):
    """A fabricated dynamic write outside the static set is a gap."""
    sssp = tree_report.primitive("sssp")
    gaps = validate_soundness(sssp, {"_RelaxFunctor": {"nonexistent"}})
    assert len(gaps) == 1
    assert "nonexistent" in gaps[0]


def test_sanitizer_observed_writes_populated(kron_graph):
    with sanitize(strict=False) as s:
        _run_primitive("sssp", kron_graph, 0, Machine())
    assert "labels" in s.observed_writes.get("_RelaxFunctor", set())


# -------------------------------------------- registration regressions

def test_pagerank_degrees_registered(kron_graph):
    from repro.primitives.pagerank import PagerankProblem

    p = PagerankProblem(kron_graph)
    assert "degrees" in p.registered_arrays()
    assert p.array_specs()["degrees"]["dtype"] == "float64"
    assert np.array_equal(
        p.degrees, np.maximum(kron_graph.out_degrees, 1).astype(np.float64))


def test_ppr_degrees_registered(kron_graph):
    from repro.primitives.ppr import PprProblem

    p = PprProblem(kron_graph, seeds=np.array([0], dtype=np.int64))
    assert "degrees" in p.registered_arrays()
    assert np.array_equal(
        p.degrees, np.maximum(kron_graph.out_degrees, 1).astype(np.float64))


def test_salsa_norms_registered():
    from repro.graph import from_edges
    from repro.primitives.bipartite import BipartiteGraph
    from repro.primitives.salsa import SalsaProblem

    g = from_edges([(0, 3), (0, 4), (1, 4), (2, 5)], n=6)
    bp = BipartiteGraph(g, n_left=3, n_right=3)
    p = SalsaProblem(bp)
    assert {"out_norm", "in_norm"} <= set(p.registered_arrays())
    assert np.array_equal(
        p.out_norm, np.maximum(g.out_degrees.astype(np.float64), 1.0))
    assert np.array_equal(
        p.in_norm, np.maximum(bp.reverse.out_degrees.astype(np.float64),
                              1.0))


def test_cc_alternate_schedule_still_correct(tiny_graph):
    """Regression for the hook-functor split: both schedules label the
    same components."""
    from repro.primitives import cc

    base = cc(tiny_graph)
    alt = cc(tiny_graph, alternate=True)
    assert base.num_components == alt.num_components == 2
    # same partition (ids may differ between schedules)
    _, inv_a = np.unique(base.component_ids, return_inverse=True)
    _, inv_b = np.unique(alt.component_ids, return_inverse=True)
    assert np.array_equal(inv_a, inv_b)


# ------------------------------------------------- stale suppressions

def test_stale_suppression_detected(tmp_path):
    f = tmp_path / "stale.py"
    f.write_text(textwrap.dedent("""
        class CleanFunctor(Functor):
            def apply_vertex(self, P, v):
                x = 1  # lint: allow(raw-write)
                return None
        """))
    report = analyze_paths([str(f)])
    assert [(line, token) for _, line, token in report.stale] \
        == [(4, "raw-write")]


def test_live_suppression_not_stale(tmp_path):
    f = tmp_path / "live.py"
    f.write_text(textwrap.dedent("""
        class OkFunctor(Functor):
            def apply_vertex(self, P, v):
                P.ids[v] = v  # lint: allow(raw-write)
                return None
        """))
    report = analyze_paths([str(f)])
    assert report.stale == []
    assert report.violations == []


def test_cli_strict_fails_on_stale(tmp_path, capsys):
    f = tmp_path / "stale.py"
    f.write_text("class CleanFunctor(Functor):\n"
                 "    def apply_vertex(self, P, v):\n"
                 "        return None  # lint: allow(GR009)\n")
    assert main(["analyze", str(f)]) == 0
    assert main(["analyze", str(f), "--strict"]) == 1
    assert "stale suppression" in capsys.readouterr().err


# --------------------------------------------------- CLI + rendering

def test_cli_analyze_shipped_tree_clean(capsys):
    assert main(["analyze", "--strict"]) == 0
    out = capsys.readouterr().out
    assert "bfs: fusable: yes" in out
    assert "sssp: fusable: yes" in out
    assert "pagerank: fusable: yes" in out


def test_cli_analyze_fails_on_violation(tmp_path, capsys):
    f = tmp_path / "bad.py"
    f.write_text("from repro.core import atomics\n"
                 "class BadFunctor(Functor):\n"
                 "    def apply_edge(self, P, src, dst, eid):\n"
                 "        atomics.atomic_min(P.x, dst, src, P.machine)\n"
                 "        atomics.atomic_max(P.x, src, dst, P.machine)\n")
    # unregistered arrays: GR011 needs no registry, only the atomic calls
    assert main(["analyze", str(f)]) == 1
    assert "GR011" in capsys.readouterr().out


def test_json_report_is_deterministic_and_valid(tree_report):
    d1 = report_to_dict(tree_report)
    d2 = report_to_dict(analyze_paths([_primitives_dir()]))
    assert json.dumps(d1, sort_keys=True) == json.dumps(d2, sort_keys=True)
    assert d1["schema_version"] == REPORT_SCHEMA_VERSION
    assert validate_report_dict(d1) == []
    # survives a JSON round-trip
    assert validate_report_dict(json.loads(json.dumps(d1))) == []


def test_validate_report_rejects_malformed():
    assert validate_report_dict({}) != []
    good = report_to_dict(analyze_paths([_primitives_dir()]))
    bad = json.loads(json.dumps(good))
    bad["primitives"][0]["fusable"] = \
        not bad["primitives"][0]["fusable"]
    assert any("inconsistent" in e for e in validate_report_dict(bad))


def test_render_text_shows_verdict_and_reasons(tree_report):
    text = render_text(tree_report)
    assert "cc: fusable: yes" in text
    assert "mis: fusable: no" in text
    assert "enactor inline write" in text


def test_render_dot_emits_clustered_digraph(tree_report):
    dot = render_dot(tree_report)
    assert dot.startswith("digraph operator_dags {")
    assert 'label="bfs [fusable]"' in dot
    assert 'label="mst [blocked]"' in dot
    assert "->" in dot
    assert dot.rstrip().endswith("}")


def test_cli_analyze_dot(capsys):
    assert main(["analyze", "--dot"]) == 0
    assert capsys.readouterr().out.startswith("digraph")
