"""Generator tests: determinism, structural targets of the dataset twins."""

import numpy as np
import pytest

from repro.graph import generators, datasets, properties


def test_rmat_determinism():
    a = generators.rmat(8, seed=11)
    b = generators.rmat(8, seed=11)
    assert a == b


def test_rmat_seed_sensitivity():
    a = generators.rmat(8, seed=11)
    b = generators.rmat(8, seed=12)
    assert a != b


def test_rmat_size():
    g = generators.rmat(8, edge_factor=8, seed=1, undirected=False)
    assert g.n == 256
    # duplicates/self-loops removed, so at most the sampled count
    assert 0 < g.m <= 8 * 256


def test_rmat_skew():
    """R-MAT with Graph500 parameters must be strongly skewed."""
    g = generators.rmat(10, seed=1)
    deg = g.out_degrees
    assert deg.max() > 10 * deg.mean()


def test_rmat_rejects_bad_params():
    with pytest.raises(ValueError):
        generators.rmat(-1)
    with pytest.raises(ValueError):
        generators.rmat(4, a=0.8, b=0.3, c=0.3)


def test_kronecker_alias():
    assert generators.kronecker(6, seed=2) == generators.rmat(6, edge_factor=16, seed=2)


def test_road_grid_shape():
    g = generators.road_grid(20, 10, seed=1)
    assert g.n == 200
    assert g.out_degrees.max() <= 8  # 4-neighborhood + diagonals, symmetrized
    stats = properties.stats(g)
    assert stats.n_components == 1  # the spanning comb guarantees this
    assert stats.pseudo_diameter >= 20  # Theta(width + height)


def test_road_grid_rejects_degenerate():
    with pytest.raises(ValueError):
        generators.road_grid(0, 5)


def test_hub_graph_structure():
    g = generators.hub_graph(3000, seed=2)
    deg = g.out_degrees
    assert int(np.argmax(deg)) == 0           # vertex 0 is the hub
    assert deg[0] >= 3000 // 13               # ~n/12 hub degree
    d = properties.pseudo_diameter(g, seed=0)
    assert d > 100                            # backbone keeps it huge
    stats = properties.stats(g)
    assert stats.n_components == 1


def test_hub_graph_rejects_tiny():
    with pytest.raises(ValueError):
        generators.hub_graph(4)


def test_powerlaw_cluster_mean_degree():
    g = generators.powerlaw_cluster(4000, avg_degree=12.0, seed=3)
    avg = g.m / g.n
    assert 6.0 < avg < 24.0  # cleaning perturbs, but the scale must hold


def test_powerlaw_cluster_skew():
    g = generators.powerlaw_cluster(4000, seed=3)
    deg = g.out_degrees
    assert deg.max() > 5 * deg.mean()


def test_uniform_random_edge_count():
    g = generators.uniform_random(500, 2000, seed=1, undirected=False)
    assert 1500 < g.m <= 2000


def test_star_and_path():
    s = generators.star(10)
    assert s.out_degrees[0] == 9
    assert np.all(s.out_degrees[1:] == 1)
    p = generators.path(10)
    assert properties.pseudo_diameter(p) == 9


def test_complete():
    g = generators.complete(6)
    assert g.m == 6 * 5
    assert np.all(g.out_degrees == 5)


def test_bipartite_powerlaw():
    g, nl, nr = generators.bipartite_powerlaw(200, 100, seed=4)
    assert g.n == 300
    src = g.edge_sources
    assert src.max() < nl            # edges only go left -> right
    assert g.indices.min() >= nl


# -- dataset twins ---------------------------------------------------------------


@pytest.mark.parametrize("name", datasets.TABLE_ORDER)
def test_dataset_loads(name):
    g = datasets.load(name, scale=1 / 512)
    assert g.n > 100
    assert g.m > 0


def test_dataset_unknown_name():
    with pytest.raises(KeyError):
        datasets.load("nope")


def test_dataset_determinism():
    a = datasets.load("kron", scale=1 / 512, seed=1)
    b = datasets.load("kron", scale=1 / 512, seed=1)
    assert a == b


def test_soc_twin_structure():
    g = datasets.load("soc", scale=1 / 512)
    s = properties.stats(g, seed=1)
    assert s.frac_degree_lt_128 > 0.85   # "90% of nodes have degree < 128"
    assert s.pseudo_diameter <= 20       # short-diameter scale-free


def test_bitcoin_twin_structure():
    g = datasets.load("bitcoin", scale=1 / 512)
    s = properties.stats(g, seed=1)
    deg = g.out_degrees
    assert deg.max() > 0.05 * g.n        # one enormous hub
    assert s.frac_degree_lt_4 > 0.5      # mostly tiny degrees
    # diameter scales as sqrt(scale) from the paper's 1041 (see datasets)
    assert s.pseudo_diameter > 25


def test_roadnet_twin_structure():
    g = datasets.load("roadnet", scale=1 / 512)
    s = properties.stats(g, seed=1)
    assert g.out_degrees.max() <= 8
    assert s.pseudo_diameter > 30


def test_kron_scalability_series():
    series = datasets.kron_scalability_series(min_logn=8, max_logn=10)
    sizes = [g.n for g in series.values()]
    assert sizes == [256, 512, 1024]
    ms = [g.m for g in series.values()]
    assert ms[1] > ms[0] and ms[2] > ms[1]


# -- properties ---------------------------------------------------------------


def test_pseudo_diameter_path():
    assert properties.pseudo_diameter(generators.path(30), seed=0) == 29


def test_pseudo_diameter_star():
    assert properties.pseudo_diameter(generators.star(30), seed=0) == 2


def test_stats_fields(kron_graph):
    s = properties.stats(kron_graph)
    assert s.n == kron_graph.n
    assert s.m == kron_graph.m
    assert 0.0 <= s.frac_degree_lt_4 <= 1.0
    assert 0.0 < s.largest_component_frac <= 1.0
    d = s.as_dict()
    assert d["vertices"] == s.n


def test_degree_quantiles(kron_graph):
    q = properties.degree_quantiles(kron_graph)
    assert q[0.5] <= q[0.9] <= q[0.99]
