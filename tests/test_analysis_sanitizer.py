"""Dynamic race detector: seeded races are caught, shipped primitives are
clean, and benign patterns (atomics, idempotent writes, relaxed arrays)
pass without noise."""

import numpy as np
import pytest

from repro.analysis import (RaceError, current_sanitizer, lint_source,
                            sanitize)
from repro.core import (EnactorBase, Frontier, Functor, ProblemBase, advance,
                        atomics, compute, filter_frontier)
from repro.graph import from_edges


@pytest.fixture
def fan_in_graph():
    """Vertices 0 and 1 both point at 2 and 3: advancing {0, 1} produces
    duplicate destination lanes — the race-prone shape."""
    return from_edges([(0, 2), (0, 3), (1, 2), (1, 3)], n=4)


class _LabelProblem(ProblemBase):
    def __init__(self, graph, machine=None):
        super().__init__(graph, machine)
        self.add_vertex_array("labels", np.int64, -1)


RACY_SOURCE = '''
class RacyDepthFunctor(Functor):
    """Raw-writes the BFS depth: the seeded contract violation."""
    def apply_edge(self, P, src, dst, eid):
        P.labels[dst] = 7
        return None
'''


class RacyDepthFunctor(Functor):
    def apply_edge(self, P, src, dst, eid):
        P.labels[dst] = 7  # lint: allow(raw-write) deliberate race for tests
        return None


# ------------------------------------------------ seeded racy functor

def test_racy_functor_caught_statically():
    vs = lint_source(RACY_SOURCE, "racy.py")
    assert [v.rule.name for v in vs] == ["raw-write"]


def test_racy_functor_caught_dynamically(fan_in_graph):
    problem = _LabelProblem(fan_in_graph)
    with pytest.raises(RaceError) as exc:
        with sanitize():
            advance(problem, Frontier(np.array([0, 1])), RacyDepthFunctor())
    kinds = {r.kind for r in exc.value.reports}
    assert "ww-duplicate-lanes" in kinds
    report = exc.value.reports[0]
    assert report.array == "labels"
    assert report.functor == "RacyDepthFunctor"
    assert "atomics" in report.detail


def test_problem_state_restored_after_race(fan_in_graph):
    """A strict-mode abort must not leave TrackedArray views installed."""
    problem = _LabelProblem(fan_in_graph)
    with pytest.raises(RaceError):
        with sanitize():
            advance(problem, Frontier(np.array([0, 1])), RacyDepthFunctor())
    assert type(problem.labels) is np.ndarray
    assert current_sanitizer() is None


# ------------------------------------------------------- ww-conflict

def test_differing_values_reported_even_if_idempotent(fan_in_graph):
    class Racy(Functor):
        idempotent = True

        def apply_edge(self, P, src, dst, eid):
            P.labels[dst] = src  # lint: allow(raw-write) deliberate race
            return None

    problem = _LabelProblem(fan_in_graph)
    with pytest.raises(RaceError) as exc:
        with sanitize():
            advance(problem, Frontier(np.array([0, 1])), Racy())
    assert {r.kind for r in exc.value.reports} == {"ww-conflict"}


# ------------------------------------------------------- raw-hazard

def test_read_after_raw_write_reported(fan_in_graph):
    class Hazard(Functor):
        def apply_vertex(self, P, v):
            P.labels[v] = 1  # lint: allow(raw-write) deliberate race
            return P.labels[v] > 0  # reads its own kernel's writes

    problem = _LabelProblem(fan_in_graph)
    with pytest.raises(RaceError) as exc:
        with sanitize():
            filter_frontier(problem, Frontier(np.array([0, 1, 2])), Hazard())
    assert {r.kind for r in exc.value.reports} == {"raw-hazard"}


# --------------------------------------------------- unrouted-write

def test_stashed_reference_write_reported(fan_in_graph):
    class Stashed(Functor):
        def apply_vertex(self, P, v):
            # mutate through the registry dict, bypassing the tracked view
            P._vertex_arrays["labels"][np.asarray(v)] = 9
            return None

    problem = _LabelProblem(fan_in_graph)
    with pytest.raises(RaceError) as exc:
        with sanitize():
            compute(problem, Frontier(np.array([0, 1])), Stashed())
    assert {r.kind for r in exc.value.reports} == {"unrouted-write"}


# -------------------------------------------------- benign patterns

def test_atomic_routed_writes_are_clean(fan_in_graph):
    class Atomic(Functor):
        def apply_edge(self, P, src, dst, eid):
            won = atomics.atomic_max(P.labels, dst, src, P.machine)
            return won

    problem = _LabelProblem(fan_in_graph)
    with sanitize() as s:
        advance(problem, Frontier(np.array([0, 1])), Atomic())
    assert s.clean
    assert problem.labels.tolist() == [-1, -1, 1, 1]


def test_idempotent_equal_value_duplicates_are_clean(fan_in_graph):
    class IdempotentDepth(Functor):
        idempotent = True

        def apply_edge(self, P, src, dst, eid):
            P.labels[dst] = 7  # lint: allow(raw-write) equal values, benign
            return None

    problem = _LabelProblem(fan_in_graph)
    with sanitize() as s:
        advance(problem, Frontier(np.array([0, 1])), IdempotentDepth())
    assert s.clean


def test_relaxed_array_exempt_from_value_checks(fan_in_graph):
    class RelaxedProblem(_LabelProblem):
        relaxed_arrays = frozenset({"labels"})

    class AnyParent(Functor):
        def apply_edge(self, P, src, dst, eid):
            P.labels[dst] = src  # lint: allow(raw-write) any parent valid
            return None

    problem = RelaxedProblem(fan_in_graph)
    with sanitize() as s:
        advance(problem, Frontier(np.array([0, 1])), AnyParent())
    assert s.clean


def test_functor_local_copies_are_inert(fan_in_graph):
    """A copy taken inside the functor is private state — writes to it
    must not be reported."""
    class Copies(Functor):
        def apply_vertex(self, P, v):
            scratch = P.labels.copy()
            scratch[v] = 5
            return None

    problem = _LabelProblem(fan_in_graph)
    with sanitize() as s:
        compute(problem, Frontier(np.array([0, 1])), Copies())
    assert s.clean


def test_non_strict_collects_without_raising(fan_in_graph):
    problem = _LabelProblem(fan_in_graph)
    with sanitize(strict=False) as s:
        advance(problem, Frontier(np.array([0, 1])), RacyDepthFunctor())
    assert not s.clean
    assert s.reports[0].kind == "ww-duplicate-lanes"
    with pytest.raises(RaceError):
        s.check()
    assert "violation" in s.summary()


def test_enactor_sanitize_flag(fan_in_graph):
    class RacyEnactor(EnactorBase):
        def _iterate(self, frontier):
            return self.advance(frontier, RacyDepthFunctor())

    problem = _LabelProblem(fan_in_graph)
    enactor = RacyEnactor(problem, sanitize=True)
    with pytest.raises(RaceError):
        enactor.enact(Frontier(np.array([0, 1])))


# --------------------------------- shipped primitives run clean

def test_bfs_variants_clean(kron_graph):
    import repro.primitives as P
    with sanitize() as s:
        r1 = P.bfs(kron_graph, 0, idempotent=False)
        r2 = P.bfs(kron_graph, 0, idempotent=True)
    assert s.clean
    assert np.array_equal(r1.labels, r2.labels)


def test_sssp_clean(kron_weighted):
    import repro.primitives as P
    with sanitize() as s:
        P.sssp(kron_weighted, 0)
    assert s.clean


def test_bc_clean(kron_graph):
    import repro.primitives as P
    with sanitize() as s:
        P.bc(kron_graph, 0)
    assert s.clean


def test_pagerank_clean(kron_graph):
    import repro.primitives as P
    with sanitize() as s:
        P.pagerank(kron_graph)
        P.pagerank_gather(kron_graph)
    assert s.clean


def test_cc_clean(kron_graph):
    import repro.primitives as P
    with sanitize() as s:
        P.cc(kron_graph)
    assert s.clean


def test_bipartite_primitives_clean(kron_graph):
    import repro.primitives as P
    bp = P.induced_bipartite(kron_graph, np.arange(kron_graph.n // 2))
    with sanitize() as s:
        P.hits(bp, max_iterations=10)
        P.salsa(bp, max_iterations=10)
    assert s.clean


def test_remaining_primitives_clean(kron_graph, kron_weighted):
    import repro.primitives as P
    with sanitize() as s:
        P.ppr(kron_graph, 0)
        P.label_propagation(kron_graph, max_iterations=15)
        P.who_to_follow(kron_graph, 0)
        P.color(kron_graph)
        P.mis(kron_graph)
        P.kcore(kron_graph)
        P.triangle_count(kron_graph)
        P.mst(kron_weighted)
    assert s.clean


# ------------------------------------- resolve_masks hardening

def test_resolve_masks_rejects_non_boolean():
    from repro.core.functor import resolve_masks
    with pytest.raises(TypeError, match="boolean"):
        resolve_masks(3, np.array([1, 0, 1]), where="Racy.cond_edge")


def test_resolve_masks_error_names_functor_method():
    from repro.core.functor import resolve_masks
    with pytest.raises(ValueError, match="Racy.cond_edge"):
        resolve_masks(3, np.array([True, False]), where="Racy.cond_edge")


def test_resolve_masks_accepts_boolean():
    from repro.core.functor import resolve_masks
    out = resolve_masks(2, np.array([True, False]),
                        np.array([True, True]))
    assert out.tolist() == [True, False]
