"""Enactor loop, trace recording, and direction-policy tests."""

import numpy as np
import pytest

from repro.core import (EnactorBase, Frontier, Functor, ProblemBase,
                        DirectionOptimizer, FixedDirection)
from repro.graph import generators
from repro.simt import Machine


class CountProblem(ProblemBase):
    def __init__(self, graph, machine=None):
        super().__init__(graph, machine)
        self.add_vertex_array("labels", np.int64, -1)

    def unvisited_mask(self):
        return self.labels < 0


class StepFunctor(Functor):
    def __init__(self, depth):
        self.depth = depth

    def cond_edge(self, P, src, dst, eid):
        return P.labels[dst] < 0

    def apply_edge(self, P, src, dst, eid):
        P.labels[dst] = self.depth
        return None


class SimpleEnactor(EnactorBase):
    def _iterate(self, frontier):
        out = self.advance(frontier, StepFunctor(self.iteration + 1))
        return out.deduplicated()


@pytest.fixture()
def graph():
    return generators.path(10)


def test_enact_runs_to_empty(graph):
    P = CountProblem(graph)
    P.labels[0] = 0
    e = SimpleEnactor(P)
    final = e.enact(Frontier.from_vertex(0))
    assert final.is_empty
    # 9 productive steps + 1 final step that discovers the empty frontier
    assert e.stats.iterations == 10
    assert P.labels.tolist() == list(range(10))


def test_enact_max_iterations(graph):
    P = CountProblem(graph)
    P.labels[0] = 0
    e = SimpleEnactor(P, max_iterations=3)
    e.enact(Frontier.from_vertex(0))
    assert e.stats.iterations == 3
    assert P.labels.max() == 3


def test_trace_records_ops(graph):
    P = CountProblem(graph)
    P.labels[0] = 0
    e = SimpleEnactor(P)
    e.enact(Frontier.from_vertex(0))
    assert len(e.stats.trace) == 10
    first = e.stats.trace[0]
    assert first.op == "advance"
    assert first.iteration == 0
    assert first.in_size == 1


def test_op_sequence(graph):
    P = CountProblem(graph)
    P.labels[0] = 0
    e = SimpleEnactor(P)
    e.enact(Frontier.from_vertex(0))
    assert e.stats.op_sequence(0) == ["advance"]
    assert e.stats.ops_per_iteration() == pytest.approx(1.0)


def test_enactor_base_iterate_abstract(graph):
    P = CountProblem(graph)
    with pytest.raises(NotImplementedError):
        EnactorBase(P)._iterate(Frontier.empty())


def test_enactor_counts_machine_iterations(graph):
    m = Machine()
    P = CountProblem(graph, m)
    P.labels[0] = 0
    SimpleEnactor(P).enact(Frontier.from_vertex(0))
    assert m.counters.iterations == 10


# -- direction policies ----------------------------------------------------------


def test_fixed_direction():
    g = generators.star(10)
    d = FixedDirection("pull")
    assert d.choose(g, 1, 1, 9) == "pull"
    with pytest.raises(ValueError):
        FixedDirection("both")


def test_direction_optimizer_switches_to_pull():
    g = generators.kronecker(8, seed=1)
    d = DirectionOptimizer(alpha=15.0)
    # small frontier with few edges stays push
    assert d.choose(g, 1, 2, g.n - 1) == "push"
    # a big frontier holding most of the edges, with the unvisited
    # population collapsed, flips to pull
    assert d.choose(g, g.n // 2, g.m // 2, g.n // 3) == "pull"


def test_direction_optimizer_guards():
    g = generators.kronecker(8, seed=1)
    # mostly-unvisited graph: never pull, however edge-heavy the frontier
    d = DirectionOptimizer()
    assert d.choose(g, g.n // 2, g.m, g.n - 1) == "push"
    # tiny frontier (below the switch-back threshold): no pull ping-pong
    d = DirectionOptimizer()
    assert d.choose(g, 2, g.m, g.n // 3) == "push"


def test_direction_optimizer_switches_back_to_push():
    g = generators.kronecker(8, seed=1)
    d = DirectionOptimizer(beta=18.0)
    d.mode = "pull"
    assert d.choose(g, 2, 4, 10) == "push"  # tiny frontier: back to push


def test_direction_optimizer_reset():
    d = DirectionOptimizer()
    d.mode = "pull"
    d.reset()
    assert d.mode == "push"


def test_direction_optimizer_empty_graph():
    from repro.graph import from_edges

    g = from_edges([], n=0)
    d = DirectionOptimizer()
    assert d.choose(g, 0, 0, 0) == "push"


# -- problem base ------------------------------------------------------------------


def test_problem_array_registration(graph):
    P = CountProblem(graph)
    assert P.labels is P._vertex_arrays["labels"]
    e = P.add_edge_array("flags", bool, False)
    assert e.shape == (graph.m,)
    assert P.state_nbytes() == P.labels.nbytes + e.nbytes


def test_problem_footprint_coefficients(graph):
    P = CountProblem(graph)
    coeff = P.footprint_coefficients()
    assert coeff["beta"] == pytest.approx(2.0)  # one int64 per vertex
    assert coeff["alpha"] == 0.0


def test_problem_unvisited_default_raises(graph):
    class Bare(ProblemBase):
        pass

    with pytest.raises(NotImplementedError):
        Bare(graph).unvisited_mask()
