#!/usr/bin/env python3
"""Road-network routing — the paper's other topology extreme.

Large-diameter, small even degree (roadNet-CA-like): the regime where
GPU traversal exposes little parallelism per level and the near/far
priority queue (Section 4.1.1) earns its keep.  This example routes
between far-apart intersections, extracts the path from the predecessor
tree, compares the priority queue against plain Bellman-Ford-style
relaxation, and builds a minimum spanning "maintenance" tree.

Run:  python examples/road_network_routing.py
"""

import numpy as np

from repro.graph import generators, with_random_weights
from repro.primitives import bfs, mst, sssp
from repro.simt import Machine


def extract_path(preds: np.ndarray, src: int, dst: int) -> list:
    """Walk the shortest-path tree from dst back to src."""
    path = [dst]
    while path[-1] != src:
        p = int(preds[path[-1]])
        if p < 0:
            return []  # unreachable
        path.append(p)
    return path[::-1]


def main() -> None:
    # a city street grid with dropped segments and a few diagonal ramps;
    # travel times 1..64 per segment (the paper's SSSP weight range)
    g = generators.road_grid(120, 90, drop_prob=0.08, diag_prob=0.03, seed=5)
    gw = with_random_weights(g, low=1, high=64, seed=9)
    print(f"road network: {gw}, max degree {int(gw.out_degrees.max())}")

    src = 0                      # northwest corner
    dst = gw.n - 1               # southeast corner

    # ---- how far apart are they, structurally? ---------------------------
    hops = bfs(g, src).labels[dst]
    print(f"\nintersections {src} -> {dst}: {hops} hops apart")

    # ---- route with the near/far priority queue ---------------------------
    m_pq = Machine()
    r = sssp(gw, src, machine=m_pq, use_priority_queue=True)
    path = extract_path(r.preds, src, dst)
    print(f"\nshortest travel time: {r.labels[dst]:.0f} "
          f"over {len(path) - 1} segments")
    print(f"  route prefix: {path[:8]} ...")

    # verify the tree invariant on the route
    w = gw.weight_or_ones()
    total = 0.0
    for a, b in zip(path, path[1:]):
        nbrs = gw.neighbors(a)
        eid = int(gw.indptr[a]) + int(np.flatnonzero(nbrs == b)[0])
        total += w[eid]
    assert total == r.labels[dst], "path weights must sum to the distance"

    # ---- ablation: priority queue vs plain relaxation ----------------------
    m_plain = Machine()
    sssp(gw, src, machine=m_plain, use_priority_queue=False)
    print("\nwork comparison (this is Davidson et al.'s motivation):")
    print(f"  with near/far PQ: {m_pq.counters.edges_visited:>10,} "
          f"edge relaxations, {m_pq.elapsed_ms():8.2f} simulated ms")
    print(f"  plain relaxation: {m_plain.counters.edges_visited:>10,} "
          f"edge relaxations, {m_plain.elapsed_ms():8.2f} simulated ms")

    # ---- maintenance tree: MST over repair costs ---------------------------
    r_mst = mst(gw)
    print(f"\nminimum spanning tree (e.g. minimal road-maintenance set): "
          f"total weight {r_mst.total_weight(gw):,.0f}")


if __name__ == "__main__":
    main()
