#!/usr/bin/env python3
"""Social-network analytics — the paper's motivating workload.

On a soc-LiveJournal-like scale-free graph: find influencers (PageRank),
brokers (betweenness centrality), communities (label propagation +
connected components), and recommend accounts to follow (the who-to-follow
pipeline of Section 5.5, with personalized PageRank, SALSA, and HITS).

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro.graph import datasets
from repro.primitives import (bc, cc, pagerank, label_propagation,
                              who_to_follow, ppr, triangle_count, kcore)
from repro.simt import Machine


def main() -> None:
    # a 1/512-scale twin of soc-LiveJournal1 (same degree-distribution
    # shape; see repro.graph.datasets for the scaling argument)
    g = datasets.load("soc", scale=1 / 512, seed=1)
    print(f"social graph: {g}, max degree {int(g.out_degrees.max())}")

    # ---- influencers: PageRank -------------------------------------------
    m = Machine()
    pr = pagerank(g, machine=m)
    influencers = np.argsort(-pr.rank)[:5]
    print(f"\ntop influencers (PageRank): {influencers.tolist()}")
    print(f"  {pr.iterations} iterations, {pr.elapsed_ms:.2f} simulated ms")

    # ---- brokers: betweenness centrality (sampled sources) -----------------
    rng = np.random.default_rng(0)
    sample = rng.choice(g.n, size=8, replace=False)
    m = Machine()
    bcr = bc(g, sources=sample, machine=m)
    brokers = np.argsort(-bcr.bc_values)[:5]
    print(f"\ntop brokers (approx BC, {len(sample)} sources): "
          f"{brokers.tolist()}")
    print(f"  {bcr.elapsed_ms:.2f} simulated ms")

    # ---- structure: components, communities, cores, clustering ------------
    comp = cc(g)
    comm = label_propagation(g, max_iterations=30)
    cores = kcore(g)
    tri = triangle_count(g)
    print(f"\nstructure: {comp.num_components} components, "
          f"{comm.num_communities} communities (label prop), "
          f"max core {cores.max_core}, {tri.total:,} triangles")

    # ---- recommendations: who-to-follow (Section 5.5) ----------------------
    user = int(influencers[0])
    m = Machine()
    wtf = who_to_follow(g, user, k=5, machine=m)
    print(f"\nwho-to-follow for user {user}:")
    print(f"  circle of trust: {len(wtf.circle)} accounts")
    print(f"  recommendations: {wtf.recommendations.tolist()}")
    print(f"  similar users:   {wtf.similar_users.tolist()}")

    # personalized PageRank view of the same question
    pr_user = ppr(g, user)
    already = set(g.neighbors(user).tolist()) | {user}
    recs = [v for v in pr_user.top(20).tolist() if v not in already][:5]
    print(f"  (personalized-PageRank recommendations: {recs})")


if __name__ == "__main__":
    main()
