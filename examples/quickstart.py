#!/usr/bin/env python3
"""Quickstart: run the five paper primitives on a scale-free graph.

This walks the library's surface in the order the paper presents it:
build a graph (Section 3), run each Section 5 primitive through its
one-call driver, and read both the algorithm outputs and the simulated
GPU's performance counters.

Run:  python examples/quickstart.py
"""

from repro.graph import generators, with_random_weights
from repro.primitives import bfs, sssp, bc, pagerank, cc
from repro.simt import Machine


def main() -> None:
    # A Graph500-style Kronecker graph: 2^12 vertices, skewed degrees —
    # the irregular workload GPUs struggle with and Gunrock targets.
    g = generators.kronecker(12, seed=42)
    print(f"graph: {g}  (max degree {int(g.out_degrees.max())})")

    # ---- BFS (Section 5.1): idempotent + direction-optimized ------------
    m = Machine()
    r = bfs(g, src=0, machine=m)
    reached = int((r.labels >= 0).sum())
    print(f"\nBFS        reached {reached}/{g.n} vertices "
          f"in {r.iterations} iterations")
    print(f"           simulated {r.elapsed_ms:.3f} ms, "
          f"{m.counters.kernel_launches} kernel launches, "
          f"{m.counters.edges_visited:,} edges visited")

    # ---- SSSP (Section 5.2): near/far priority queue ---------------------
    gw = with_random_weights(g, low=1, high=64, seed=7)  # paper's weights
    m = Machine()
    r = sssp(gw, src=0, machine=m)
    import numpy as np

    finite = np.isfinite(r.labels)
    print(f"\nSSSP       mean distance "
          f"{r.labels[finite].mean():.1f} over {int(finite.sum())} vertices")
    print(f"           simulated {r.elapsed_ms:.3f} ms, "
          f"{m.counters.atomics_issued:,} atomicMin relaxations")

    # ---- BC (Section 5.3): forward sigma + backward dependency ----------
    m = Machine()
    r = bc(g, sources=0, machine=m)
    top = int(np.argmax(r.bc_values))
    print(f"\nBC         most-central vertex: {top} "
          f"(score {r.bc_values[top]:.1f})")
    print(f"           simulated {r.elapsed_ms:.3f} ms")

    # ---- PageRank (Section 5.5): residual push until converged ----------
    m = Machine()
    r = pagerank(g, machine=m)
    top = np.argsort(-r.rank)[:3]
    print(f"\nPageRank   converged in {r.iterations} iterations; "
          f"top vertices {top.tolist()}")
    print(f"           simulated {r.elapsed_ms:.3f} ms")

    # ---- CC (Section 5.4): hooking + pointer jumping ---------------------
    m = Machine()
    r = cc(g, machine=m)
    print(f"\nCC         {r.num_components} components "
          f"in {r.iterations} hooking rounds")
    print(f"           simulated {r.elapsed_ms:.3f} ms")


if __name__ == "__main__":
    main()
