#!/usr/bin/env python3
"""Framework face-off — a miniature of the paper's Table 2.

Runs BFS and SSSP across all seven systems (BGL, PowerGraph, Medusa,
MapGraph, hardwired GPU, Ligra, Gunrock) on a scale-free graph and a road
grid, printing simulated runtimes and Gunrock's speedups.  For the full
four-dataset, five-primitive table, see benchmarks/bench_table2_*.py.

Run:  python examples/framework_faceoff.py
"""

from repro.frameworks import ALL_FRAMEWORKS, Unsupported
from repro.graph import generators, with_random_weights


def run(primitive: str, graph, label: str) -> None:
    print(f"\n{primitive.upper()} on {label} "
          f"({graph.n:,} vertices, {graph.m:,} edges)")
    rows = []
    for cls in ALL_FRAMEWORKS:
        fw = cls()
        try:
            r = fw.run(primitive, graph, src=0)
            rows.append((fw.name, r.runtime_ms, r.iterations))
        except Unsupported:
            rows.append((fw.name, None, 0))
    gunrock = next(ms for name, ms, _ in rows if name == "Gunrock")
    for name, ms, iters in rows:
        if ms is None:
            print(f"  {name:<14} {'—':>10}")
        else:
            rel = ms / gunrock
            marker = "  <- Gunrock" if name == "Gunrock" else f"  ({rel:5.1f}x)"
            print(f"  {name:<14} {ms:>10.3f} ms  {iters:>4} iters{marker}")


def main() -> None:
    kron = generators.kronecker(13, seed=2)
    road = generators.road_grid(100, 60, seed=2)

    run("bfs", kron, "scale-free (kron)")
    run("bfs", road, "road grid")
    run("sssp", with_random_weights(kron, seed=3), "scale-free (kron)")
    run("sssp", with_random_weights(road, seed=3), "road grid")


if __name__ == "__main__":
    main()
