#!/usr/bin/env python3
"""Writing a NEW graph primitive against the public API.

The paper's programmability claim: "programmers can assemble complex and
high-performance graph primitives from operations that manipulate the
frontier without knowledge of their internals", in ~150 lines.  This
example builds a primitive the library does not ship — **k-hop reachability
with per-hop attenuation** (an influence/diffusion score used in viral-
marketing models): every vertex reachable within k hops of the seeds gets
a score of decay^depth summed over all shortest-path arrivals.

It needs exactly the three Gunrock pieces: a Problem (state), a Functor
(per-edge computation), and an Enactor (advance + filter per hop).

Run:  python examples/custom_primitive.py
"""

import numpy as np

from repro.core import (EnactorBase, Frontier, Functor, IdempotenceHeuristics,
                        ProblemBase)
from repro.core import atomics
from repro.graph import generators
from repro.simt import Machine


# ---- 1. the Problem: algorithm state as registered SoA arrays --------------

class InfluenceProblem(ProblemBase):
    """Per-vertex influence score and visit depth."""

    def __init__(self, graph, seeds, decay=0.5, machine=None):
        super().__init__(graph, machine)
        self.decay = decay
        self.add_vertex_array("depth", np.int64, -1)
        self.add_vertex_array("score", np.float64, 0.0)
        seeds = np.asarray(seeds, dtype=np.int64)
        self.depth[seeds] = 0
        self.score[seeds] = 1.0
        self.seeds = seeds


# ---- 2. the Functor: what happens on every traversed edge ------------------

class InfluenceFunctor(Functor):
    """Push decayed influence to unvisited neighbors (idempotent: a vertex
    may be scored by several same-depth parents — that is the semantics)."""

    idempotent = True

    def __init__(self, depth):
        self.depth = depth

    def cond_edge(self, P, src, dst, eid):
        # only expand into vertices not reached at a shallower depth
        return P.depth[dst] < 0

    def apply_edge(self, P, src, dst, eid):
        P.depth[dst] = self.depth
        atomics.atomic_add(P.score, dst,
                           P.score[src] * P.decay / np.maximum(
                               1, P.graph.out_degrees[src]),
                           P.machine)
        return None

    def cond_vertex(self, P, v):
        # filter keeps only first-time discoveries for the next frontier
        return P.depth[v] == P.depth[v]  # all pass; heuristics dedupe


# ---- 3. the Enactor: the bulk-synchronous loop ------------------------------

class InfluenceEnactor(EnactorBase):
    def __init__(self, problem, k_hops, **kw):
        super().__init__(problem, max_iterations=k_hops, **kw)
        self.heuristics = IdempotenceHeuristics()

    def _iterate(self, frontier):
        fn = InfluenceFunctor(self.iteration + 1)
        out = self.advance(frontier, fn)
        return self.filter(out, fn, heuristics=self.heuristics)


def influence(graph, seeds, k_hops=3, decay=0.5, machine=None):
    """Public driver, in the style of the shipped primitives."""
    problem = InfluenceProblem(graph, seeds, decay, machine)
    enactor = InfluenceEnactor(problem, k_hops)
    enactor.enact(Frontier(np.asarray(seeds, dtype=np.int64)))
    return problem


def main():
    g = generators.powerlaw_cluster(5000, avg_degree=12, seed=3)
    machine = Machine()
    seeds = [0, 1, 2]
    P = influence(g, seeds, k_hops=3, decay=0.5, machine=machine)

    reached = int((P.depth >= 0).sum())
    top = np.argsort(-P.score)[:5]
    print(f"influence from seeds {seeds} over 3 hops:")
    print(f"  reached {reached}/{g.n} vertices")
    print(f"  top influenced: {top.tolist()}")
    print(f"  scores: {np.round(P.score[top], 4).tolist()}")
    print(f"  simulated GPU time: {machine.elapsed_ms():.3f} ms "
          f"({machine.counters.kernel_launches} kernels)")

    # the whole primitive above is ~60 lines — the paper quotes 133-261
    # lines for its shipped primitives in CUDA.


if __name__ == "__main__":
    main()
